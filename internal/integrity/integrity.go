// Package integrity implements the paper's motivating application:
// "handling integrity constraints that are more complex than
// dependencies" (§1) — general closed formulas with quantifiers and
// disjunctions checked against the database. This continues the line of
// the paper's companion work [BDM 88] on constraint satisfaction in
// deductive databases.
//
// Beyond yes/no checking, the manager derives violation WITNESSES: the
// constraint is negated, normalized by the Phase-1 rewriting system, and
// when the canonical negation is an existential block (always the case
// for ∀-shaped constraints) the block's variables become an open query
// whose answers are exactly the violating tuples.
package integrity

import (
	"fmt"

	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rewrite"
)

// Constraint is a named closed formula that must hold in every database
// state.
type Constraint struct {
	Name   string
	Source string
	Query  parser.Query
}

// Report is the outcome of checking one constraint.
type Report struct {
	Name      string
	Satisfied bool
	// WitnessVars names the columns of Witnesses; empty when no witness
	// query is derivable (e.g. purely existential constraints, whose
	// violation is an absence rather than a set of offending tuples).
	WitnessVars []string
	// Witnesses holds the violating tuples; nil when satisfied or when no
	// witness query is derivable.
	Witnesses *relation.Relation
}

// Manager owns a set of constraints over one database.
type Manager struct {
	db          *core.DB
	eng         *core.Engine
	constraints []*Constraint
	byName      map[string]*Constraint
}

// NewManager builds a manager over the database. Its engine runs with the
// plan cache on: constraint checking re-evaluates the same closed formulas
// after every database change, and between changes the memo serves repeated
// CheckAll sweeps from warm entries (mutations flush it automatically via
// the catalog generation counter).
func NewManager(db *core.DB) *Manager {
	return &Manager{
		db:     db,
		eng:    core.NewEngine(db, core.WithPlanCache(0)),
		byName: make(map[string]*Constraint),
	}
}

// Define registers a constraint. The formula must be closed and safe
// (restricted quantifications); both are checked here so violations
// surface at definition time, not at first check.
func (m *Manager) Define(name, source string) (*Constraint, error) {
	if _, dup := m.byName[name]; dup {
		return nil, fmt.Errorf("integrity: constraint %q already defined", name)
	}
	q, err := parser.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("integrity: constraint %q: %w", name, err)
	}
	if q.IsOpen() {
		return nil, fmt.Errorf("integrity: constraint %q must be a closed formula", name)
	}
	// Validate safety by normalizing once (views expanded first).
	if _, err := m.eng.PrepareQuery(q); err != nil {
		return nil, fmt.Errorf("integrity: constraint %q: %w", name, err)
	}
	c := &Constraint{Name: name, Source: source, Query: q}
	m.constraints = append(m.constraints, c)
	m.byName[name] = c
	return c, nil
}

// MustDefine is Define for static setup; it panics on error.
func (m *Manager) MustDefine(name, source string) *Constraint {
	c, err := m.Define(name, source)
	if err != nil {
		panic(err)
	}
	return c
}

// Constraints returns the defined constraints in definition order.
func (m *Manager) Constraints() []*Constraint { return m.constraints }

// Check evaluates one constraint and, if violated, its witnesses.
func (m *Manager) Check(name string) (Report, error) {
	c, ok := m.byName[name]
	if !ok {
		return Report{}, fmt.Errorf("integrity: unknown constraint %q", name)
	}
	return m.check(c)
}

// CheckAll evaluates every constraint in definition order.
func (m *Manager) CheckAll() ([]Report, error) {
	out := make([]Report, 0, len(m.constraints))
	for _, c := range m.constraints {
		r, err := m.check(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Violated returns the reports of all violated constraints.
func (m *Manager) Violated() ([]Report, error) {
	all, err := m.CheckAll()
	if err != nil {
		return nil, err
	}
	var out []Report
	for _, r := range all {
		if !r.Satisfied {
			out = append(out, r)
		}
	}
	return out, nil
}

func (m *Manager) check(c *Constraint) (Report, error) {
	res, err := m.eng.Query(c.Source)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Name: c.Name, Satisfied: res.Truth}
	if rep.Satisfied {
		return rep, nil
	}
	vars, body, ok := m.witnessQuery(c)
	if !ok {
		return rep, nil
	}
	wres, err := m.eng.PrepareQuery(parser.Query{OpenVars: vars, Body: body})
	if err != nil {
		// The derived query can be unsafe in exotic cases; the check
		// result stands, only witnesses are unavailable.
		return rep, nil
	}
	r, err := m.eng.Run(wres)
	if err != nil {
		return Report{}, err
	}
	rep.WitnessVars = vars
	rep.Witnesses = r.Rows
	return rep, nil
}

// witnessQuery derives the open violation query: normalize ¬C and, if the
// canonical form is a single existential block ∃x̄ B, answer { x̄ | B }.
func (m *Manager) witnessQuery(c *Constraint) ([]string, calculus.Formula, bool) {
	expanded, err := m.db.Views().Expand(c.Query)
	if err != nil {
		return nil, nil, false
	}
	neg := parser.Query{Body: calculus.Not{F: expanded.Body}}
	nq, err := rewrite.Normalize(neg)
	if err != nil {
		return nil, nil, false
	}
	ex, ok := nq.Body.(calculus.Exists)
	if !ok {
		return nil, nil, false
	}
	return ex.Vars, ex.Body, true
}
