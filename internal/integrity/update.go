package integrity

import (
	"fmt"

	"repro/internal/calculus"
	"repro/internal/parser"
	"repro/internal/relation"
)

// This file implements incremental constraint checking on updates, in the
// spirit of the constraint-satisfaction method of the paper's companion
// work [BDM 88] (and of Nicolas' simplification method it builds on): an
// insertion into relation R can only violate constraints in which R occurs
// with NEGATIVE polarity relative to satisfaction — for a satisfied
// universal constraint ∀x̄ R(x̄) ⇒ F, a new R-tuple adds one proof
// obligation, namely F specialized to that tuple. The manager therefore
//
//  1. skips constraints not mentioning the updated relation at all,
//  2. specializes single-range universal constraints to the inserted
//     tuple (a closed formula, usually constant-time to check), and
//  3. falls back to a full recheck for other shapes.

// InsertChecked inserts the tuple and checks the affected constraints; on
// violation the insertion is rolled back and the violated constraint
// reported in the returned error. The database is unchanged on error.
func (m *Manager) InsertChecked(relName string, t relation.Tuple) error {
	rel, err := m.db.Catalog().Relation(relName)
	if err != nil {
		return err
	}
	if !rel.Insert(t) {
		return nil // duplicate: the database state did not change
	}
	violated, err := m.CheckInsertion(relName, t)
	if err != nil {
		rel.Delete(t)
		return err
	}
	if violated != "" {
		rel.Delete(t)
		return fmt.Errorf("integrity: inserting %s into %q violates constraint %q", t, relName, violated)
	}
	return nil
}

// CheckInsertion checks the constraints affected by a just-inserted tuple
// and returns the name of the first violated one ("" when all hold). The
// tuple must already be present; the caller owns rollback.
func (m *Manager) CheckInsertion(relName string, t relation.Tuple) (string, error) {
	for _, c := range m.constraints {
		if !mentions(c.Query.Body, relName, m) {
			continue
		}
		ok, err := m.checkSpecialized(c, relName, t)
		if err != nil {
			return "", err
		}
		if !ok {
			return c.Name, nil
		}
	}
	return "", nil
}

// mentions reports whether the formula (with views expanded) contains an
// atom over the relation.
func mentions(f calculus.Formula, relName string, m *Manager) bool {
	expanded, err := m.db.Views().ExpandFormula(f)
	if err != nil {
		expanded = f
	}
	found := false
	calculus.Walk(expanded, func(g calculus.Formula) {
		if a, ok := g.(calculus.Atom); ok && a.Pred == relName {
			found = true
		}
	})
	return found
}

// checkSpecialized evaluates the constraint restricted to the inserted
// tuple when the shape allows it, else fully.
func (m *Manager) checkSpecialized(c *Constraint, relName string, t relation.Tuple) (bool, error) {
	expanded, err := m.db.Views().Expand(c.Query)
	if err != nil {
		return false, err
	}
	if spec, ok := specializeForall(expanded.Body, relName, t); ok {
		res, err := m.eng.PrepareQuery(parser.Query{Body: spec})
		if err == nil {
			r, err := m.eng.Run(res)
			if err != nil {
				return false, err
			}
			return r.Truth, nil
		}
		// Fall through to the full check on preparation problems.
	}
	res, err := m.eng.Query(c.Source)
	if err != nil {
		return false, err
	}
	return res.Truth, nil
}

// specializeForall recognizes ∀x̄ R(args) ⇒ F where R is the updated
// relation and every quantified variable occurs in args; it returns F with
// the variables bound to the inserted tuple's values. Constant or repeated
// arguments that the tuple does not match make the constraint trivially
// unaffected (the new tuple is outside the constrained range).
func specializeForall(f calculus.Formula, relName string, t relation.Tuple) (calculus.Formula, bool) {
	fa, ok := f.(calculus.Forall)
	if !ok {
		return nil, false
	}
	imp, ok := fa.Body.(calculus.Implies)
	if !ok {
		return nil, false
	}
	atom, ok := imp.L.(calculus.Atom)
	if !ok || atom.Pred != relName || len(atom.Args) != len(t) {
		return nil, false
	}
	// Soundness guard: if R occurs NEGATIVELY in the consequent, inserting
	// a tuple can falsify the obligations of OLD tuples (e.g.
	// ∀x,y r(x,y) ⇒ ¬r(y,y) ∨ q(x)), which checking only the new tuple's
	// obligation would miss. Positive occurrences are monotone and safe.
	if calculus.AtomPolarity(imp.R, relName)&calculus.Negative != 0 {
		return nil, false
	}
	sub := make(map[string]calculus.Term, len(atom.Args))
	for i, arg := range atom.Args {
		if !arg.IsVar() {
			if !arg.Const.Equal(t[i]) {
				// The inserted tuple is outside the range: unaffected.
				return trueFormula(), true
			}
			continue
		}
		if prev, seen := sub[arg.Var]; seen {
			if !prev.Const.Equal(t[i]) {
				return trueFormula(), true
			}
			continue
		}
		sub[arg.Var] = calculus.C(t[i])
	}
	// Every quantified variable must be bound by the atom; otherwise the
	// remaining quantification needs its own range and we fall back.
	for _, v := range fa.Vars {
		if _, ok := sub[v]; !ok {
			return nil, false
		}
	}
	return calculus.Subst(imp.R, sub), true
}

// trueFormula is a trivially satisfied closed formula (1 = 1).
func trueFormula() calculus.Formula {
	return calculus.Cmp{Left: calculus.CInt(1), Op: relation.OpEq, Right: calculus.CInt(1)}
}
