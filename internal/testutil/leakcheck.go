// Package testutil holds helpers shared by the repository's test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and registers a cleanup
// that fails the test if the count has not returned to the snapshot by the
// end of the test (goleak-style, without the dependency). The comparison
// retries briefly: goroutines that are *finishing* — a worker between its
// last instruction and its exit, a runtime timer goroutine — are not leaks,
// so the check must distinguish "still winding down" from "stuck forever".
//
// Call it first in any test that exercises the parallel executor, the memo,
// or fault injection:
//
//	func TestSomething(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
func CheckGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	})
}
