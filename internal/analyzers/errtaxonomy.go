package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrTaxonomy enforces the engine's error-classification contract in two
// rules:
//
//  1. Boundary rule — in a package that defines a typed error family
//     (named struct types with an `Err error` field and an Unwrap method:
//     ParseError, SafetyError, PlanError, ExecError), an exported function
//     or method must not return a bare errors.New(...) or a fmt.Errorf
//     without %w directly: untyped errors escaping the facade strip callers
//     of errors.As classification. Construct a family member (or wrap with
//     %w so the chain stays intact).
//
//  2. Wrapping rule — everywhere, a fmt.Errorf that formats an error-typed
//     argument must use %w for it, not %v/%s: anything else flattens the
//     chain and breaks errors.Is/As through the wrapper.
//
// The boundary rule is syntactic over return statements: it catches the
// blatant leak, while the runtime classifier (core.classifyExec/runGuarded)
// remains the backstop for errors that arrive through variables.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "typed-error-family packages must not leak bare errors.New/fmt.Errorf from exported functions; error wrapping must use %w",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(pass *Pass) error {
	boundary := definesErrorFamily(pass.Pkg)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if boundary && exportedBoundary(pass, fd) {
				checkBoundaryReturns(pass, fd)
			}
			checkWrapVerbs(pass, fd)
		}
	}
	return nil
}

// definesErrorFamily reports whether the package declares at least two
// typed error wrappers: named struct types with an `Err error` field whose
// pointer implements error. One wrapper is a convenience; two or more is a
// taxonomy the exported surface has committed to.
func definesErrorFamily(pkg *types.Package) bool {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	family := 0
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || !types.Implements(types.NewPointer(tn.Type()), errIface) {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "Err" {
				if types.Identical(f.Type(), types.Universe.Lookup("error").Type()) {
					family++
				}
				break
			}
		}
	}
	return family >= 2
}

// exportedBoundary reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported type.
func exportedBoundary(pass *Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil {
		return true
	}
	recv := receiverObject(pass, fd)
	if recv == nil {
		return true
	}
	named, ok := derefNamed(recv.Type())
	return !ok || named.Obj().Exported()
}

// checkBoundaryReturns flags `return ..., errors.New(...)` and
// `return ..., fmt.Errorf(<no %w>)` in the body of an exported function.
// Returns inside closures belong to the closure, not the boundary.
func checkBoundaryReturns(pass *Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				call, ok := res.(*ast.CallExpr)
				if !ok {
					continue
				}
				switch calleeName(pass, call) {
				case "errors.New":
					pass.Reportf(call.Pos(), "bare errors.New escapes exported %s: return a typed error-family value (ParseError/SafetyError/PlanError/ExecError/ResourceError) instead", fd.Name.Name)
				case "fmt.Errorf":
					if format, ok := formatLiteral(pass, call); ok && !formatHasWrapVerb(format) {
						pass.Reportf(call.Pos(), "bare fmt.Errorf escapes exported %s: return a typed error-family value, or wrap an underlying cause with %%w", fd.Name.Name)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkWrapVerbs flags fmt.Errorf calls that format an error-typed
// argument with a verb other than %w.
func checkWrapVerbs(pass *Pass, fd *ast.FuncDecl) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeName(pass, call) != "fmt.Errorf" {
			return true
		}
		format, ok := formatLiteral(pass, call)
		if !ok {
			return true
		}
		verbs := formatVerbs(format)
		args := call.Args[1:]
		if len(verbs) != len(args) {
			return true // malformed call; go vet's printf check owns it
		}
		for i, v := range verbs {
			if v == 'w' {
				continue
			}
			tv, ok := pass.TypesInfo.Types[args[i]]
			if !ok || tv.Type == nil {
				continue
			}
			if types.Implements(tv.Type, errIface) || types.Implements(types.NewPointer(tv.Type), errIface) {
				pass.Reportf(args[i].Pos(), "error formatted with %%%c loses the chain for errors.Is/As: wrap it with %%w", v)
			}
		}
		return true
	})
}

// calleeName resolves a call to its package-qualified callee ("errors.New")
// via the type checker, so aliased imports are still recognized.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// formatLiteral extracts a constant format string from the call's first
// argument.
func formatLiteral(pass *Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func formatHasWrapVerb(format string) bool {
	for _, v := range formatVerbs(format) {
		if v == 'w' {
			return true
		}
	}
	return false
}

// formatVerbs returns the verb letter for each formatting directive, in
// argument order. '*' width/precision arguments are returned as '*' slots
// so indexes line up with the call's variadic arguments.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
