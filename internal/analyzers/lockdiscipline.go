package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline enforces the release contract on sync.Mutex / sync.RWMutex
// acquisitions: a Lock()/RLock() must be matched by a release the function
// can be seen to reach — a deferred unlock, or an unlock before every
// lexically later return — and no call chain may re-acquire a mutex it
// already holds (the self-deadlock `closeMu`'s lock-ordered drain avoids by
// convention today).
//
// The pass is lexical and per-function-body: each FuncDecl and FuncLit is
// one scope, mutexes are keyed by the printed receiver chain (s.mu,
// b.closeMu), and read locks are tracked separately from write locks. Four
// shapes are findings:
//
//  1. a lock with no same-flavor release anywhere after it in the scope;
//  2. a return crossed while a non-deferred lock is open (no unlock between
//     the lock and the return);
//  3. a direct re-lock of a key already held in the same scope;
//  4. while a key is held, a call to a same-package method on the same
//     receiver whose own body locks the same mutex field.
//
// Lexical means control-flow-blind: an unlock inside one branch counts for
// returns after the branch. That keeps the pass simple and quiet; the
// deadlocks it exists for — early return under lock, double acquisition —
// are exactly the shapes lexical order does expose.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "Lock/RLock must be released on every return path (defer or all-branches unlock); re-locking a held mutex in one call chain is a finding",
	Run:  runLockDiscipline,
}

// lockFlavor separates write (Lock/Unlock) from read (RLock/RUnlock) pairs.
type lockFlavor int

const (
	lockWrite lockFlavor = iota
	lockRead
)

func (f lockFlavor) lockName() string {
	if f == lockRead {
		return "RLock"
	}
	return "Lock"
}

func (f lockFlavor) unlockName() string {
	if f == lockRead {
		return "RUnlock"
	}
	return "Unlock"
}

// lockEvent is one Lock/Unlock-family call found in a scope, in lexical
// order.
type lockEvent struct {
	pos      token.Pos
	key      string // printed receiver chain: "s.mu", "b.closeMu"
	flavor   lockFlavor
	acquire  bool
	deferred bool
}

func runLockDiscipline(pass *Pass) error {
	summaries := methodLockSummaries(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockScope(pass, fn.Body, receiverName(fn), summaries)
				}
			case *ast.FuncLit:
				checkLockScope(pass, fn.Body, "", summaries)
			}
			return true
		})
	}
	return nil
}

// receiverName returns the receiver identifier of a method declaration ("s"
// in func (s *Server) ...), or "" for plain functions and blank receivers.
func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

// methodLockSummaries records, for every method in the package, which of
// its receiver's mutex fields the body directly locks ("@recv.mu|w"). It is
// the one-level call-chain view rule 4 checks against.
func methodLockSummaries(pass *Pass) map[*types.Func]map[string]bool {
	out := make(map[*types.Func]map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := receiverName(fd)
			if recv == "" {
				continue
			}
			locks := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				key, flavor, acquire, isLock := mutexOp(pass, call)
				if isLock && acquire && canonicalReceiver(key, recv) != "" {
					locks[fmt.Sprintf("@recv.%s|%d", canonicalReceiver(key, recv), flavor)] = true
				}
				return true
			})
			if len(locks) > 0 {
				out[fn] = locks
			}
		}
	}
	return out
}

// canonicalReceiver rewrites a lock key rooted at the given receiver ident
// to its field path ("s.mu" with receiver "s" → "mu"); "" when the key is
// not rooted at the receiver.
func canonicalReceiver(key, recv string) string {
	if recv == "" {
		return ""
	}
	prefix := recv + "."
	if len(key) > len(prefix) && key[:len(prefix)] == prefix {
		return key[len(prefix):]
	}
	return ""
}

// mutexOp decodes a call as a sync mutex operation: the receiver-chain key,
// the flavor, and whether it acquires. isLock is false for anything else.
func mutexOp(pass *Pass, call *ast.CallExpr) (key string, flavor lockFlavor, acquire, isLock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		flavor, acquire = lockWrite, true
	case "Unlock":
		flavor, acquire = lockWrite, false
	case "RLock":
		flavor, acquire = lockRead, true
	case "RUnlock":
		flavor, acquire = lockRead, false
	default:
		return "", 0, false, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false, false
	}
	key = exprChain(sel.X)
	if key == "" {
		return "", 0, false, false
	}
	return key, flavor, acquire, true
}

// exprChain prints an ident/selector chain ("s.mu", "b.inner.closeMu"); ""
// for anything more dynamic, which the pass then ignores rather than
// misjudges.
func exprChain(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprChain(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprChain(x.X)
	}
	return ""
}

// checkLockScope runs the four rules over one function body. Nested
// function literals are separate scopes and skipped here, except that a
// deferred literal's unlocks count as deferred releases of this scope (the
// defer func() { mu.Unlock() }() idiom).
func checkLockScope(pass *Pass, body *ast.BlockStmt, recv string, summaries map[*types.Func]map[string]bool) {
	var (
		events  []lockEvent
		returns []token.Pos
		calls   []*ast.CallExpr
	)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if key, flavor, acquire, ok := mutexOp(pass, node.Call); ok && !acquire {
				events = append(events, lockEvent{pos: node.Pos(), key: key, flavor: flavor, deferred: true})
				return false
			}
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if key, flavor, acquire, ok := mutexOp(pass, call); ok && !acquire {
							events = append(events, lockEvent{pos: node.Pos(), key: key, flavor: flavor, deferred: true})
						}
					}
					return true
				})
				return false
			}
		case *ast.ReturnStmt:
			returns = append(returns, node.Pos())
		case *ast.CallExpr:
			if key, flavor, acquire, ok := mutexOp(pass, node); ok {
				events = append(events, lockEvent{pos: node.Pos(), key: key, flavor: flavor, acquire: acquire})
			} else {
				calls = append(calls, node)
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	type flavored struct {
		key    string
		flavor lockFlavor
	}
	deferred := make(map[flavored]bool)
	for _, e := range events {
		if e.deferred {
			deferred[flavored{e.key, e.flavor}] = true
		}
	}

	// Rules 1 and 2: every acquisition needs a release after it; every
	// return after a non-deferred acquisition needs a release in between.
	unreleased := make(map[flavored]bool)
	for _, l := range events {
		if !l.acquire {
			continue
		}
		fk := flavored{l.key, l.flavor}
		if deferred[fk] {
			continue
		}
		released := false
		for _, u := range events {
			if !u.acquire && !u.deferred && u.key == l.key && u.flavor == l.flavor && u.pos > l.pos {
				released = true
				break
			}
		}
		if !released {
			unreleased[fk] = true
			pass.Reportf(l.pos, "%s.%s() is never released in this function: add a defer %s.%s() or unlock on every path", l.key, l.flavor.lockName(), l.key, l.flavor.unlockName())
		}
	}
	for _, r := range returns {
		for _, l := range events {
			if !l.acquire || l.pos >= r {
				continue
			}
			fk := flavored{l.key, l.flavor}
			if deferred[fk] || unreleased[fk] {
				continue
			}
			covered := false
			for _, u := range events {
				if !u.acquire && !u.deferred && u.key == l.key && u.flavor == l.flavor && u.pos > l.pos && u.pos <= r {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(r, "return while %s is still %sed: unlock before returning or use defer", l.key, l.flavor.lockName())
			}
		}
	}

	// Rule 3: direct re-lock of a held key. held(k, pos) — some acquisition
	// of k lexically precedes pos with no release in between (deferred
	// acquisitions hold to end of scope).
	held := func(fk flavored, pos token.Pos) bool {
		for _, l := range events {
			if !l.acquire || l.deferred || l.key != fk.key || l.flavor != fk.flavor || l.pos >= pos {
				continue
			}
			releasedBefore := false
			for _, u := range events {
				if !u.acquire && !u.deferred && u.key == l.key && u.flavor == l.flavor && u.pos > l.pos && u.pos < pos {
					releasedBefore = true
					break
				}
			}
			if !releasedBefore {
				return true
			}
		}
		return false
	}
	for _, l := range events {
		if !l.acquire {
			continue
		}
		if held(flavored{l.key, l.flavor}, l.pos) {
			pass.Reportf(l.pos, "%s.%s() while %s is already held: self-deadlock", l.key, l.flavor.lockName(), l.key)
		}
	}

	// Rule 4: calling a same-receiver method that re-locks a held field.
	// Write-write and write-read collisions deadlock a Mutex/RWMutex;
	// read-read is allowed.
	if recv != "" && len(summaries) > 0 {
		type chainHit struct {
			call         *ast.CallExpr
			field        string
			calleeFlavor lockFlavor
		}
		reported := make(map[chainHit]bool)
		for _, call := range calls {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || exprChain(sel.X) != recv {
				continue
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				continue
			}
			locks := summaries[fn]
			if len(locks) == 0 {
				continue
			}
			for _, l := range events {
				if !l.acquire {
					continue
				}
				field := canonicalReceiver(l.key, recv)
				if field == "" || !held(flavored{l.key, l.flavor}, call.Pos()) {
					continue
				}
				for _, calleeFlavor := range []lockFlavor{lockWrite, lockRead} {
					if l.flavor == lockRead && calleeFlavor == lockRead {
						continue
					}
					hit := chainHit{call, field, calleeFlavor}
					if reported[hit] || !locks[fmt.Sprintf("@recv.%s|%d", field, calleeFlavor)] {
						continue
					}
					reported[hit] = true
					pass.Reportf(call.Pos(), "call to %s.%s() %ss %s.%s which is already held here: self-deadlock", recv, fn.Name(), calleeFlavor.lockName(), recv, field)
				}
			}
		}
	}
}
