// Package analyzers is an invariant-enforcing static-analysis suite for
// this repository, in the mold of golang.org/x/tools/go/analysis but built
// on the standard library alone (the build environment is hermetic: no
// module downloads). It ships nine passes that machine-check contracts the
// engine's correctness rests on:
//
//   - iterclose      — exec.Iterator implementations propagate Close to
//     every child iterator / spool field, and call sites that obtain an
//     iterator close it (or hand it off);
//   - govcharge      — materialization points (tuple-slice appends, build
//     and dedup table inserts) sit in functions that charge the resource
//     governor (the PR 3 accounting contract);
//   - errtaxonomy    — packages that define a typed error family only let
//     the family escape their exported functions, and error wrapping uses
//     %w;
//   - ctxfirst       — exported APIs take context.Context first, and
//     context.Background/TODO stay out of library code;
//   - goroleak       — every go statement outside package main is tied to a
//     lifecycle: a WaitGroup Done, a quit/done channel, or a context
//     cancellation path reachable from the spawned function;
//   - lockdiscipline — a Lock/RLock is released on every return path
//     (defer, or an unlock before each return), and no call chain re-locks
//     the mutex it already holds;
//   - atomicmix      — a struct field accessed through sync/atomic anywhere
//     is accessed only through sync/atomic, never by plain reads/writes;
//   - timeinject     — clock-injected state machines (types whose methods
//     take `now time.Time`) never read the wall clock themselves;
//   - wiredrift      — the JSON wire schema served by /stats (core.Snapshot
//     and the service stats types) stays in sync with the counter list in
//     scripts/benchcmp.sh and the stats-schema table in README.md.
//
// The passes are deliberately syntactic-plus-types: they check what one
// function can prove about itself. Flow-sensitive exceptions — a buffer the
// caller charged, an iterator a registry closes — are recorded in the code
// with a justified suppression:
//
//	//lint:ignore <analyzer> <justification>
//
// on the flagged line or the line directly above it. The justification is
// mandatory; a bare //lint:ignore is itself a finding, so the gate cannot
// rot into a pile of silent waivers. Waivers also cannot outlive the code
// they excused: a justified directive that no longer suppresses any finding
// of an analyzer that ran is reported as stale.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one invariant check. Run inspects a type-checked package
// through the Pass and reports findings; it returns an error only for
// internal failures, never for findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		IterClose, GovCharge, ErrTaxonomy, CtxFirst,
		GoroLeak, LockDiscipline, AtomicMix, TimeInject, WireDrift,
	}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// suppression is one parsed //lint:ignore directive. usedBy records, per
// analyzer name, whether the directive actually suppressed a finding — the
// stale-suppression audit reports justified directives that suppress
// nothing.
type suppression struct {
	pos           token.Position
	analyzers     map[string]bool
	justification string
	usedBy        map[string]bool
}

// covers reports whether the directive names the analyzer.
func (s *suppression) covers(name string) bool { return s.analyzers[name] }

// suppressionIndex maps file:line to the directives that apply there. A
// directive applies to its own line (trailing comment) and to the line
// directly below it (a comment of its own above the flagged statement).
type suppressionIndex struct {
	byLine map[string][]*suppression
	all    []*suppression
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// scanSuppressions collects every //lint:ignore directive in the files.
func scanSuppressions(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byLine: make(map[string][]*suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				name, justification, _ := strings.Cut(rest, " ")
				s := &suppression{
					pos:           fset.Position(c.Pos()),
					analyzers:     make(map[string]bool),
					justification: strings.TrimSpace(justification),
					usedBy:        make(map[string]bool),
				}
				for _, n := range strings.Split(name, ",") {
					if n = strings.TrimSpace(n); n != "" {
						s.analyzers[n] = true
					}
				}
				idx.all = append(idx.all, s)
				for _, line := range []int{s.pos.Line, s.pos.Line + 1} {
					k := lineKey(s.pos.Filename, line)
					idx.byLine[k] = append(idx.byLine[k], s)
				}
			}
		}
	}
	return idx
}

// suppressor returns the justified directive covering the diagnostic, if
// any. Directives without a justification never suppress: they are findings.
func (idx *suppressionIndex) suppressor(d Diagnostic) *suppression {
	for _, s := range idx.byLine[lineKey(d.Pos.Filename, d.Pos.Line)] {
		if s.covers(d.Analyzer) && s.justification != "" {
			return s
		}
	}
	return nil
}

// CheckPackage runs the analyzers over one loaded package and returns the
// surviving findings: suppressed diagnostics are dropped, every unjustified
// //lint:ignore naming one of the analyzers is itself reported, and so is
// every justified directive that suppressed nothing (a stale waiver) or
// that names an analyzer the suite does not know.
func CheckPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return CheckPackageTimed(pkg, analyzers, nil)
}

// CheckPackageTimed is CheckPackage with an optional per-analyzer
// wall-clock accumulator (nil to skip timing): each analyzer's Run duration
// over this package is added to timings[name]. cmd/lintrepro's -timing flag
// feeds the check.sh lint-budget assertion from it.
func CheckPackageTimed(pkg *Package, analyzers []*Analyzer, timings map[string]time.Duration) ([]Diagnostic, error) {
	idx := scanSuppressions(pkg.Fset, pkg.Files)
	ran := make(map[string]bool, len(analyzers))
	var out []Diagnostic
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		start := time.Now()
		err := a.Run(pass)
		if timings != nil {
			timings[a.Name] += time.Since(start)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range pass.diags {
			if s := idx.suppressor(d); s != nil {
				s.usedBy[d.Analyzer] = true
				continue
			}
			out = append(out, d)
		}
		for _, s := range idx.all {
			if s.covers(a.Name) && s.justification == "" {
				out = append(out, Diagnostic{
					Pos:      s.pos,
					Analyzer: a.Name,
					Message:  "lint:ignore needs a justification after the analyzer name",
				})
			}
		}
	}
	// Stale-suppression audit: a justified directive must earn its keep. For
	// every analyzer it names that actually ran, it must have suppressed at
	// least one finding; otherwise the code it excused has moved on and the
	// waiver is dead weight (or worse, hiding a typo in the analyzer name).
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, s := range idx.all {
		if s.justification == "" {
			continue // already reported as unjustified above
		}
		for name := range s.analyzers {
			if !known[name] {
				out = append(out, Diagnostic{
					Pos:      s.pos,
					Analyzer: "directive",
					Message:  fmt.Sprintf("lint:ignore names unknown analyzer %q: the directive suppresses nothing", name),
				})
				continue
			}
			if ran[name] && !s.usedBy[name] {
				out = append(out, Diagnostic{
					Pos:      s.pos,
					Analyzer: name,
					Message:  fmt.Sprintf("stale lint:ignore: no %s finding here to suppress — fix the directive or delete it", name),
				})
			}
		}
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer, message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ---- shared type helpers ----

// isTupleLike reports whether buffering values of type t buffers tuples: t
// is (or contains, through slices, arrays, pointers and struct fields) a
// named type called Tuple. The partitioner's keyed{t Tuple; h uint64}
// wrapper is the motivating indirect case.
func isTupleLike(t types.Type) bool { return tupleLike(t, 0) }

func tupleLike(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	switch u := t.(type) {
	case *types.Named:
		if u.Obj().Name() == "Tuple" {
			return true
		}
		return tupleLike(u.Underlying(), depth+1)
	case *types.Alias:
		return tupleLike(types.Unalias(u), depth)
	case *types.Slice:
		return tupleLike(u.Elem(), depth+1)
	case *types.Array:
		return tupleLike(u.Elem(), depth+1)
	case *types.Pointer:
		return tupleLike(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if tupleLike(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// isEmptyStruct reports whether t is struct{} — the value type of a
// membership set, whose inserts buffer their keys.
func isEmptyStruct(t types.Type) bool {
	s, ok := t.Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}

// closeMethodOf returns the niladic Close or close method in t's (or *t's)
// method set, if any. from is the package doing the lookup, so unexported
// close methods on same-package types are visible.
func closeMethodOf(t types.Type, from *types.Package) *types.Func {
	for _, name := range []string{"Close", "close"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, from, name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return fn
		}
	}
	return nil
}

// iteratorInterface finds the package's Iterator contract: a defined
// interface type named Iterator with Close in its method set, declared in
// the package itself or exported by a direct import. nil when the package
// has no iterator contract in scope.
func iteratorInterface(pkg *types.Package) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		obj := p.Scope().Lookup("Iterator")
		tn, ok := obj.(*types.TypeName)
		if !ok {
			return nil
		}
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok {
			return nil
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Close" {
				return iface
			}
		}
		return nil
	}
	if iface := lookup(pkg); iface != nil {
		return iface
	}
	for _, imp := range pkg.Imports() {
		if iface := lookup(imp); iface != nil {
			return iface
		}
	}
	return nil
}

// implementsIterator reports whether t or *t satisfies the interface.
func implementsIterator(t types.Type, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}
