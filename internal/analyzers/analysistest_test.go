package analyzers

// An analysistest-style harness without golang.org/x/tools: fixtures under
// testdata/src/<name> are loaded through the same go list + gc-importer
// pipeline production runs use, and expectations are trailing comments of
// the form
//
//	// want `regexp` [want `regexp` ...]
//
// on the line the diagnostic lands on. Every diagnostic must match a want
// on its line, and every want must be consumed by a diagnostic.

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile("want `([^`]*)`")

type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

func collectWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runAnalysisTest is the golden-test driver: one analyzer over one fixture,
// with suppression handling live (CheckPackage), checked against the
// fixture's want comments.
func runAnalysisTest(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags, err := CheckPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no %s diagnostic matching `%s`", w.file, w.line, a.Name, w.re)
		}
	}
}

func TestIterClose(t *testing.T)        { runAnalysisTest(t, IterClose, "iterclose") }
func TestGovCharge(t *testing.T)        { runAnalysisTest(t, GovCharge, "govcharge") }
func TestErrTaxonomy(t *testing.T)      { runAnalysisTest(t, ErrTaxonomy, "errtaxonomy") }
func TestCtxFirst(t *testing.T)         { runAnalysisTest(t, CtxFirst, "ctxfirst") }
func TestGoroLeak(t *testing.T)         { runAnalysisTest(t, GoroLeak, "goroleak") }
func TestLockDiscipline(t *testing.T)   { runAnalysisTest(t, LockDiscipline, "lockdiscipline") }
func TestAtomicMix(t *testing.T)        { runAnalysisTest(t, AtomicMix, "atomicmix") }
func TestTimeInjectGolden(t *testing.T) { runAnalysisTest(t, TimeInject, "timeinject") }
func TestWireDrift(t *testing.T)        { runAnalysisTest(t, WireDrift, "wiredrift") }

// TestUnjustifiedDirective checks the suppression mechanics directly: a
// bare //lint:ignore must not silence the finding it covers and must be
// reported itself, and a justified directive that suppresses nothing must
// be reported as stale.
func TestUnjustifiedDirective(t *testing.T) {
	pkg := loadFixture(t, "directive")
	diags, err := CheckPackage(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
	}
	joined := strings.Join(msgs, "\n")
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4 (unjustified directive + unsuppressed finding + stale waiver + unknown analyzer name):\n%s", len(diags), joined)
	}
	if !strings.Contains(joined, "lint:ignore needs a justification") {
		t.Errorf("missing unjustified-directive finding:\n%s", joined)
	}
	if !strings.Contains(joined, `iterator "it" is never closed`) {
		t.Errorf("bare directive suppressed the finding it covers:\n%s", joined)
	}
	if !strings.Contains(joined, "stale lint:ignore: no iterclose finding here to suppress") {
		t.Errorf("missing stale-waiver finding:\n%s", joined)
	}
	if !strings.Contains(joined, `lint:ignore names unknown analyzer "iterclos"`) {
		t.Errorf("missing unknown-analyzer finding:\n%s", joined)
	}
}

// TestSuiteStableOrder pins the suite composition the vet-tool version
// string and docs advertise.
func TestSuiteStableOrder(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	got := strings.Join(names, " ")
	if got != "iterclose govcharge errtaxonomy ctxfirst goroleak lockdiscipline atomicmix timeinject wiredrift" {
		t.Fatalf("suite order changed: %s", got)
	}
}
