package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// WireDrift pins the /stats wire schema to the two artifacts that consume
// it by name: the counter list in scripts/benchcmp.sh (the regression
// gate's awk extractor) and the stats-schema table in README.md (the
// documented contract). PR 6 renamed Snapshot counters by hand in three
// places; this pass makes the rename impossible to half-do.
//
// The pass arms only in a package that declares a struct type named
// StatsReport — the /stats payload root. From it the pass collects the
// transitive JSON tag set (following named struct fields through slices,
// maps and pointers, across package boundaries via export data), then:
//
//  1. every counter benchcmp.sh extracts must be a JSON tag somewhere in
//     the wire schema;
//  2. every name in the README's stats-schema table (the rows between
//     <!-- stats-schema:begin --> and <!-- stats-schema:end -->) must be a
//     JSON tag in the wire schema;
//  3. every JSON tag of the struct type named Snapshot must appear in the
//     README table — the versioned engine snapshot is the schema's core and
//     is documented exhaustively, both directions.
//
// The artifacts are located by walking up from the package's source
// directory to the nearest directory holding both scripts/benchcmp.sh and
// README.md, so fixtures carry their own pair and the real package binds to
// the repository's.
var WireDrift = &Analyzer{
	Name: "wiredrift",
	Doc:  "JSON tags of the /stats wire schema stay in sync with scripts/benchcmp.sh counters and the README stats-schema table",
	Run:  runWireDrift,
}

const (
	statsSchemaBegin = "<!-- stats-schema:begin -->"
	statsSchemaEnd   = "<!-- stats-schema:end -->"
)

func runWireDrift(pass *Pass) error {
	obj := pass.Pkg.Scope().Lookup("StatsReport")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	if _, ok := tn.Type().Underlying().(*types.Struct); !ok {
		return nil
	}
	at := statsReportPos(pass, tn)

	wireTags := make(map[string]bool)
	snapshotTags := make(map[string]bool)
	collectWireTags(tn.Type(), wireTags, snapshotTags, make(map[*types.TypeName]bool), 0)

	root := artifactRoot(pass)
	if root == "" {
		pass.Reportf(at, "cannot locate scripts/benchcmp.sh and README.md above this package to cross-check the wire schema")
		return nil
	}

	counters, err := benchcmpCounters(filepath.Join(root, "scripts", "benchcmp.sh"))
	if err != nil {
		return err
	}
	if len(counters) == 0 {
		pass.Reportf(at, "no counter list found in %s (expected quoted names inside the awk split call)", filepath.Join(root, "scripts", "benchcmp.sh"))
	}
	for _, c := range counters {
		if !wireTags[c] {
			pass.Reportf(at, "benchcmp.sh counter %q does not match any JSON tag in the stats wire schema: the regression gate reads a field that no longer exists", c)
		}
	}

	readmeNames, found, err := readmeSchemaNames(filepath.Join(root, "README.md"))
	if err != nil {
		return err
	}
	if !found {
		pass.Reportf(at, "README.md has no stats-schema table: add one between %s and %s", statsSchemaBegin, statsSchemaEnd)
		return nil
	}
	readmeSet := make(map[string]bool, len(readmeNames))
	for _, n := range readmeNames {
		readmeSet[n] = true
		if !wireTags[n] {
			pass.Reportf(at, "README stats-schema entry %q does not match any JSON tag in the stats wire schema: the documented field no longer exists", n)
		}
	}
	for _, tag := range sortedKeys(snapshotTags) {
		if !readmeSet[tag] {
			pass.Reportf(at, "Snapshot JSON tag %q is missing from the README stats-schema table", tag)
		}
	}
	return nil
}

// statsReportPos finds the declaration position to anchor findings on:
// the StatsReport type spec if it is in this package's AST, else the type
// object's own position.
func statsReportPos(pass *Pass, tn *types.TypeName) token.Pos {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == "StatsReport" {
					return ts.Name.Pos()
				}
			}
		}
	}
	return tn.Pos()
}

// collectWireTags walks the JSON-visible closure of t: every struct field's
// json tag name is added to tags, and the fields of the struct type named
// Snapshot also land in snapshotTags. Named struct fields are followed
// through pointers, slices, arrays and map values, across packages (export
// data preserves struct tags).
func collectWireTags(t types.Type, tags, snapshotTags map[string]bool, visited map[*types.TypeName]bool, depth int) {
	if depth > 6 {
		return
	}
	t = types.Unalias(t)
	switch u := t.(type) {
	case *types.Pointer:
		collectWireTags(u.Elem(), tags, snapshotTags, visited, depth)
		return
	case *types.Slice:
		collectWireTags(u.Elem(), tags, snapshotTags, visited, depth)
		return
	case *types.Array:
		collectWireTags(u.Elem(), tags, snapshotTags, visited, depth)
		return
	case *types.Map:
		collectWireTags(u.Elem(), tags, snapshotTags, visited, depth)
		return
	}
	var (
		st      *types.Struct
		isSnap  bool
		namedTN *types.TypeName
	)
	if named, ok := t.(*types.Named); ok {
		namedTN = named.Obj()
		if visited[namedTN] {
			return
		}
		visited[namedTN] = true
		isSnap = namedTN.Name() == "Snapshot"
		st, ok = named.Underlying().(*types.Struct)
		if !ok {
			return
		}
	} else if s, ok := t.(*types.Struct); ok {
		st = s
	} else {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		name := jsonTagName(st.Tag(i))
		if name != "" {
			tags[name] = true
			if isSnap {
				snapshotTags[name] = true
			}
		}
		collectWireTags(field.Type(), tags, snapshotTags, visited, depth+1)
	}
}

// jsonTagName extracts the wire name from a struct tag; "" when the field
// is untagged or excluded.
func jsonTagName(tag string) string {
	name, _, _ := strings.Cut(reflect.StructTag(tag).Get("json"), ",")
	if name == "-" {
		return ""
	}
	return name
}

// artifactRoot walks up from the package's source directory to the nearest
// directory that holds both scripts/benchcmp.sh and README.md.
func artifactRoot(pass *Pass) string {
	if len(pass.Files) == 0 {
		return ""
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	for {
		bench := filepath.Join(dir, "scripts", "benchcmp.sh")
		readme := filepath.Join(dir, "README.md")
		if fileExists(bench) && fileExists(readme) {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

func fileExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && !info.IsDir()
}

// benchcmpCounters extracts the counter names from the awk split("...")
// call in benchcmp.sh: every identifier inside the double-quoted segments
// between `split(` and the closing `counters` argument.
func benchcmpCounters(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := string(data)
	start := strings.Index(text, "split(")
	if start < 0 {
		return nil, nil
	}
	rest := text[start:]
	end := strings.Index(rest, "counters")
	if end < 0 {
		return nil, nil
	}
	region := rest[:end]
	var counters []string
	for {
		open := strings.IndexByte(region, '"')
		if open < 0 {
			break
		}
		region = region[open+1:]
		closeQ := strings.IndexByte(region, '"')
		if closeQ < 0 {
			break
		}
		for _, tok := range strings.Fields(region[:closeQ]) {
			if isCounterName(tok) {
				counters = append(counters, tok)
			}
		}
		region = region[closeQ+1:]
	}
	return counters, nil
}

// isCounterName reports whether tok looks like a JSON counter name
// (lowercase identifier with underscores), filtering awk syntax debris.
func isCounterName(tok string) bool {
	if tok == "" {
		return false
	}
	for _, r := range tok {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return false
		}
	}
	return true
}

// readmeSchemaNames extracts the backticked first-column names of the table
// rows between the stats-schema markers. found is false when the markers
// are absent.
func readmeSchemaNames(path string) (names []string, found bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	text := string(data)
	begin := strings.Index(text, statsSchemaBegin)
	if begin < 0 {
		return nil, false, nil
	}
	rest := text[begin+len(statsSchemaBegin):]
	end := strings.Index(rest, statsSchemaEnd)
	if end < 0 {
		return nil, false, nil
	}
	for _, line := range strings.Split(rest[:end], "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		open := strings.IndexByte(line, '`')
		if open < 0 {
			continue
		}
		tail := line[open+1:]
		closeQ := strings.IndexByte(tail, '`')
		if closeQ < 0 {
			continue
		}
		if name := tail[:closeQ]; name != "" {
			names = append(names, name)
		}
	}
	return names, true, nil
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
