package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file loads and type-checks packages without golang.org/x/tools: the
// go command resolves the build graph (`go list -export -json -deps`) and
// emits export data for every dependency into the build cache; the target
// packages are then parsed from source and type-checked against that export
// data through the standard library's gc importer. The result is the same
// (Files, Pkg, TypesInfo) view x/tools' go/packages would hand an analysis
// driver, at the cost of shelling out to go list once per Load.

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of go list -json output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps patterns...` in dir and decodes
// the JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types through export data files produced by
// the go command.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load resolves the patterns in dir and returns the matched packages,
// parsed and type-checked. Test files are deliberately excluded: the suite
// checks production invariants, and test scaffolding (ad-hoc iterators,
// context.Background) plays by different rules.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []*Package
	for _, t := range targets {
		pkg, err := typeCheck(t.ImportPath, t.Dir, t.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheck parses the listed files and type-checks them against the
// dependency export data.
func typeCheck(importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", importPath, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type checking: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// TypeCheckFiles type-checks already-parsed files against export data
// resolved by lookup. The vettool mode of cmd/lintrepro uses it with the
// import map go vet provides; tests use it with fixture sources.
func TypeCheckFiles(importPath string, fset *token.FileSet, files []*ast.File, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type checking: %w", importPath, err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// newInfo allocates the full set of type-checker fact maps the analyzers
// consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
