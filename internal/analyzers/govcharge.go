package analyzers

import (
	"go/ast"
	"go/types"
)

// GovCharge enforces the PR 3 resource-accounting contract: every
// materialization point — a statement that grows a tuple buffer or a
// build/dedup table — must sit in a function that charges the governor.
//
// A materialization is:
//   - append(s, ...) where s buffers tuples (its element type is, or
//     contains, a named Tuple type — the partitioner's keyed wrapper
//     included);
//   - m[k] = v where m is a map whose value type buffers tuples, is
//     struct{} (a membership set retains its keys), or is itself such a
//     map (nested group tables).
//
// The dominance requirement is approximated per enclosing function: some
// call to the charge family (Governor.charge/chargeOp/ChargeTuples/
// ChargeBytesN, Context.chargeTuple/chargeBatch/chargeN/ChargeTuple) must
// appear in the same top-level
// function as the materialization — closures included, since emit-style
// helpers capture the worker context. Buffers charged by their caller (the
// shared tupleSet, the memo spool's append half) carry a justified
// //lint:ignore govcharge at the materialization site.
//
// The analyzer arms itself only in packages that know about the governor:
// ones that define or import a Governor type. Everywhere else (parser,
// algebra, storage) buffering is plan-shape-bounded and exempt by design.
var GovCharge = &Analyzer{
	Name: "govcharge",
	Doc:  "materialization points (tuple buffers, build/dedup tables) must be governed by a charge call in the same function",
	Run:  runGovCharge,
}

// chargeFamily are the method names that account materialized tuples
// against the governor, on the Governor itself or through a Context.
var chargeFamily = map[string]bool{
	"charge":      true,
	"chargeOp":    true,
	"chargeTuple": true,
	"chargeBatch": true,
	"chargeN":     true,
	"ChargeTuple": true,
	"ChargeBatch": true,
	// Bulk (block-granular) governor entry points of the batch executor.
	"ChargeTuples": true,
	"ChargeBytesN": true,
}

func runGovCharge(pass *Pass) error {
	if !governorInScope(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncCharges(pass, fd)
		}
	}
	return nil
}

// governorInScope reports whether the package defines or imports a type
// named Governor.
func governorInScope(pkg *types.Package) bool {
	if _, ok := pkg.Scope().Lookup("Governor").(*types.TypeName); ok {
		return true
	}
	for _, imp := range pkg.Imports() {
		if _, ok := imp.Scope().Lookup("Governor").(*types.TypeName); ok {
			return true
		}
	}
	return false
}

func checkFuncCharges(pass *Pass, fd *ast.FuncDecl) {
	charges := false
	var mats []ast.Node
	var matDesc []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && chargeFamily[sel.Sel.Name] {
				charges = true
			}
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "append" {
				if tv, ok := pass.TypesInfo.Types[node]; ok {
					if s, ok := tv.Type.Underlying().(*types.Slice); ok && isTupleLike(s.Elem()) {
						mats = append(mats, node)
						matDesc = append(matDesc, "append to a tuple buffer")
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				tv, ok := pass.TypesInfo.Types[idx.X]
				if !ok {
					continue
				}
				m, ok := tv.Type.Underlying().(*types.Map)
				if !ok || !isBufferValue(m.Elem(), 0) {
					continue
				}
				mats = append(mats, idx)
				matDesc = append(matDesc, "insert into a build/dedup table")
			}
		}
		return true
	})
	if charges {
		return
	}
	for i, m := range mats {
		pass.Reportf(m.Pos(), "%s in %s is not governed: no charge-family call (chargeTuple/chargeBatch/chargeN/charge) in this function", matDesc[i], fd.Name.Name)
	}
}

// isBufferValue reports whether a map with this value type retains tuples
// or keys: tuple-like values, struct{} membership sets, and nested maps of
// either.
func isBufferValue(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	if isTupleLike(t) || isEmptyStruct(t) {
		return true
	}
	if m, ok := t.Underlying().(*types.Map); ok {
		return isBufferValue(m.Elem(), depth+1)
	}
	return false
}
