package analyzers

import (
	"go/ast"
	"go/types"
)

// TimeInject keeps clock-injected state machines deterministic. The
// service's overload machinery — circuit breaker, CoDel controller, token
// bucket, fair scheduler — is testable precisely because time flows in as
// an explicit `now time.Time` argument and the wall clock is read only at
// the service boundary. A time.Now() or time.Since() smuggled into one of
// those state machines silently re-couples its tests to the scheduler.
//
// The contract is structural, not a file list: a function or method with a
// parameter named now of type time.Time declares itself clock-injected, and
// a named type with at least one clock-injected method is a clock-injected
// state machine. Findings are wall-clock reads (time.Now, time.Since)
// inside any clock-injected function or any method of a clock-injected
// type — including its methods that forgot to take now, which is how drift
// starts. Types whose methods take time under another name (the Server's
// dispatched time.Time) are boundary code and stay out of scope by
// construction.
var TimeInject = &Analyzer{
	Name: "timeinject",
	Doc:  "clock-injected state machines (methods taking `now time.Time`) must not call time.Now/time.Since directly",
	Run:  runTimeInject,
}

func runTimeInject(pass *Pass) error {
	// First pass: find clock-injected functions and the named types whose
	// method sets contain one.
	injectedFuncs := make(map[*ast.FuncDecl]bool)
	injectedTypes := make(map[*types.TypeName]bool)
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if !hasNowParam(pass, fd) {
				continue
			}
			injectedFuncs[fd] = true
			if tn := receiverTypeName(pass, fd); tn != nil {
				injectedTypes[tn] = true
			}
		}
	}
	if len(injectedFuncs) == 0 {
		return nil
	}
	// Second pass: no wall-clock reads inside clock-injected functions or
	// any method of a clock-injected type.
	for _, fd := range decls {
		inScope := injectedFuncs[fd]
		if !inScope {
			if tn := receiverTypeName(pass, fd); tn != nil && injectedTypes[tn] {
				inScope = true
			}
		}
		if !inScope {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if name := fn.Name(); name == "Now" || name == "Since" {
				pass.Reportf(call.Pos(), "time.%s inside clock-injected %s: take the time as a `now time.Time` argument instead", name, describeFunc(fd))
			}
			return true
		})
	}
	return nil
}

// hasNowParam reports whether fd takes a parameter named now of type
// time.Time.
func hasNowParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name != "now" {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[field.Type]; ok && typeIsNamed(tv.Type, "time", "Time") {
				return true
			}
		}
	}
	return false
}

// receiverTypeName resolves fd's receiver to its named type, nil for plain
// functions and unresolvable receivers.
func receiverTypeName(pass *Pass, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok || tv.Type == nil {
		return nil
	}
	t := types.Unalias(tv.Type)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// describeFunc names a declaration for a diagnostic: "method (*breaker).allow"
// or "function fifoEligible".
func describeFunc(fd *ast.FuncDecl) string {
	if fd.Recv == nil {
		return "function " + fd.Name.Name
	}
	return "method " + fd.Name.Name
}
