package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak enforces the goroutine-lifecycle contract the concurrent tiers
// (partition workers, batcher collector, batch goroutines, shutdown drain)
// follow by design: every `go` statement outside package main must be tied
// to a lifecycle the spawner (or anyone) can wait on or cancel. Untracked
// goroutines are how a service leaks under churn — the chaos suite's
// CheckGoroutines catches them at runtime, this pass catches them at lint
// time.
//
// A spawned function counts as tied when its body — or the body of a
// same-package function/method it calls, two levels deep — contains any of:
//
//   - a Done() call on a sync.WaitGroup (the Add/Done pair; parallel.go's
//     partition workers);
//   - a receive from a channel, directly, in a select case, or by ranging
//     over it (the batcher collector's quit/done select, slot tokens);
//   - a Done() or Err() call on a context.Context (cancellation-aware
//     workers).
//
// Spawning a function whose body the pass cannot see (another package's, or
// a function value) is a finding: if the lifecycle lives elsewhere, say so
// with a justified //lint:ignore goroleak. Package main is exempt — a
// daemon's top-level goroutines live exactly as long as the process — and
// test files are skipped by the loader.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement outside package main must be tied to a lifecycle (WaitGroup Done, quit/done channel receive, or context cancellation)",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !spawnTied(pass, gs.Call, decls) {
				pass.Reportf(gs.Pos(), "goroutine has no lifecycle tie: the spawned function neither signals a WaitGroup, receives from a quit/done channel, nor watches a context")
			}
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes every function/method declaration by its
// types.Func object, so a `go recv.method()` spawn can be followed into the
// method body.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// spawnTied reports whether the go statement's callee has lifecycle
// evidence: a function literal is inspected directly, a named same-package
// function/method through its declaration.
func spawnTied(pass *Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyTied(pass, lit.Body, decls, make(map[*types.Func]bool), 0)
	}
	if fn := calleeFunc(pass, call); fn != nil {
		if fd, ok := decls[fn]; ok && fd.Body != nil {
			return bodyTied(pass, fd.Body, decls, map[*types.Func]bool{fn: true}, 0)
		}
	}
	return false
}

// calleeFunc resolves the called function object for ident and selector
// callees (nil for indirect calls through function values).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// bodyTied scans one function body for lifecycle evidence, recursing up to
// two levels into same-package callees (the spawn-helper-indirection case:
// go b.loop() where loop holds the select).
func bodyTied(pass *Pass, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool, depth int) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			// <-ch anywhere: a direct receive or a select comm clause.
			if node.Op == token.ARROW && isChannel(pass, node.X) {
				tied = true
			}
		case *ast.RangeStmt:
			// for v := range ch terminates when the channel closes.
			if isChannel(pass, node.X) {
				tied = true
			}
		case *ast.CallExpr:
			sel, ok := node.Fun.(*ast.SelectorExpr)
			if !ok {
				if depth < 2 {
					if fn := calleeFunc(pass, node); fn != nil && !visited[fn] {
						if fd, ok := decls[fn]; ok && fd.Body != nil {
							visited[fn] = true
							if bodyTied(pass, fd.Body, decls, visited, depth+1) {
								tied = true
							}
						}
					}
				}
				return !tied
			}
			recv := sel.X
			switch sel.Sel.Name {
			case "Done":
				if isTypeFromPackage(pass, recv, "sync", "WaitGroup") || isTypeFromPackage(pass, recv, "context", "Context") {
					tied = true
				}
			case "Err":
				if isTypeFromPackage(pass, recv, "context", "Context") {
					tied = true
				}
			}
			if !tied && depth < 2 {
				if fn := calleeFunc(pass, node); fn != nil && !visited[fn] {
					if fd, ok := decls[fn]; ok && fd.Body != nil {
						visited[fn] = true
						if bodyTied(pass, fd.Body, decls, visited, depth+1) {
							tied = true
						}
					}
				}
			}
		}
		return !tied
	})
	return tied
}

// isChannel reports whether e's type is (or points to) a channel.
func isChannel(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	_, ok = t.(*types.Chan)
	return ok
}

// isTypeFromPackage reports whether e's type (through pointers and aliases)
// is the named type pkgPath.name.
func isTypeFromPackage(pass *Pass, e ast.Expr, pkgPath, name string) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return typeIsNamed(tv.Type, pkgPath, name)
}

func typeIsNamed(t types.Type, pkgPath, name string) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
