package analyzers

import (
	"go/ast"
	"go/types"
)

// AtomicMix enforces exclusive atomicity: a struct field that is ever
// accessed through a sync/atomic function (atomic.AddInt64(&s.n, 1),
// atomic.LoadUint32(&s.flag)) must be accessed through sync/atomic
// everywhere. A plain read or write of the same field is a data race the
// atomic calls were supposed to prevent — the exact bug class the engine's
// PR 6 snapMu+cum migration existed to remove. The typed atomics
// (atomic.Int64 and friends) are immune by construction — the value is
// unexported inside the wrapper — so the pass only has work to do where the
// function-style API is used.
//
// Per-package view: the pass marks every field whose address is taken as a
// sync/atomic argument in this package, then flags every other selector of
// those fields. A mixed-access field shared across packages is flagged in
// whichever package does the atomic access.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a struct field accessed through sync/atomic anywhere must be accessed only through sync/atomic",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: collect fields used atomically, and the exact selector nodes
	// that constitute the sanctioned atomic accesses.
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := unary.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := fieldOf(pass, sel); field != nil {
					atomicFields[field] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other selector of an atomic field is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			field := fieldOf(pass, sel)
			if field == nil || !atomicFields[field] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package: this plain access races with the atomic ones", field.Name())
			return true
		})
	}
	return nil
}

// isAtomicPkgCall reports whether call invokes a function of the
// sync/atomic package (the function-style API: atomic.AddInt64, ...).
func isAtomicPkgCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves sel to the struct field it selects, nil when sel is a
// method, package qualifier, or non-field selector.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Qualified identifiers (pkg.Var) land in Uses, not Selections; those
	// are package-level variables, not fields.
	return nil
}
