package analyzers

import (
	"go/ast"
	"go/types"
)

// IterClose enforces the iterator lifecycle contract on both sides of the
// exec.Iterator interface:
//
//  1. An Iterator implementation whose struct holds child iterator or spool
//     fields (any field whose type implements Iterator or carries a niladic
//     Close/close method) must touch every such field in its own Close
//     method — by calling its Close/close, passing it to a helper, or
//     ranging over it (for slices of children). A forgotten child leaks the
//     subtree's buffers and, for memo producers, strands consumers on a
//     spool that is never abandoned.
//
//  2. A function that obtains an iterator from a call (exec.Build and
//     friends) must either close it or hand it off (return it, store it in
//     a struct, pass it to another call). A variable whose only uses are
//     Open/Next drives the iterator and then drops it on the floor.
//
// The check is per-function and presence-based, not path-sensitive: a Close
// inside a conditional satisfies it (memoIter closes its input only once
// opened). Genuinely externally-managed iterators take a justified
// //lint:ignore iterclose.
var IterClose = &Analyzer{
	Name: "iterclose",
	Doc:  "Iterator implementations must close child iterators; call sites must close or hand off obtained iterators",
	Run:  runIterClose,
}

func runIterClose(pass *Pass) error {
	iface := iteratorInterface(pass.Pkg)
	if iface == nil {
		return nil // no iterator contract in scope
	}
	checkCloseMethods(pass, iface)
	checkCallSites(pass, iface)
	return nil
}

// closableField reports whether a child field must be released by Close.
// Slices of closable children count; the element is what gets closed.
func closableField(t types.Type, iface *types.Interface, from *types.Package) bool {
	if s, ok := t.Underlying().(*types.Slice); ok {
		t = s.Elem()
	}
	if implementsIterator(t, iface) {
		return true
	}
	// Non-iterator spool-like helpers (proberSpec, result sinks): anything
	// with a niladic Close/close is a resource the parent owns. Plain data
	// types (tuples, stats, predicates) have no such method and are exempt.
	return closeMethodOf(t, from) != nil
}

// checkCloseMethods verifies rule 1 for every struct in the package that
// implements the Iterator interface and declares its own Close method.
func checkCloseMethods(pass *Pass, iface *types.Interface) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Close" || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			recvObj := receiverObject(pass, fd)
			if recvObj == nil {
				continue
			}
			named, ok := derefNamed(recvObj.Type())
			if !ok || !implementsIterator(named, iface) {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			released := releasedFields(pass, fd, recvObj)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !closableField(f.Type(), iface, pass.Pkg) {
					continue
				}
				if !released[f.Name()] {
					pass.Reportf(fd.Name.Pos(), "%s.Close does not close child field %q (an %s)",
						named.Obj().Name(), f.Name(), typeLabel(f.Type(), iface))
				}
			}
		}
	}
}

// receiverObject resolves the declared receiver variable of a method; nil
// for anonymous receivers (which cannot close anything anyway).
func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[names[0]]
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

func typeLabel(t types.Type, iface *types.Interface) string {
	if s, ok := t.Underlying().(*types.Slice); ok {
		if implementsIterator(s.Elem(), iface) {
			return "iterator slice"
		}
	}
	if implementsIterator(t, iface) {
		return "iterator"
	}
	return "owned resource with a Close method"
}

// releasedFields scans a Close body for child fields the method releases:
// recv.F.Close()/recv.F.close() calls, recv.F passed as a call argument,
// or a range over recv.F whose body contains a Close call.
func releasedFields(pass *Pass, fd *ast.FuncDecl, recv types.Object) map[string]bool {
	released := make(map[string]bool)
	fieldOfRecv := func(e ast.Expr) (string, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return "", false
		}
		return sel.Sel.Name, true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Close" || sel.Sel.Name == "close") {
				if f, ok := fieldOfRecv(sel.X); ok {
					released[f] = true
				}
			}
			for _, arg := range node.Args {
				if f, ok := fieldOfRecv(arg); ok {
					released[f] = true
				}
			}
		case *ast.RangeStmt:
			f, ok := fieldOfRecv(node.X)
			if !ok {
				return true
			}
			closesElem := false
			ast.Inspect(node.Body, func(inner ast.Node) bool {
				if call, ok := inner.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Close" || sel.Sel.Name == "close") {
						closesElem = true
					}
				}
				return true
			})
			if closesElem {
				released[f] = true
			}
		}
		return true
	})
	return released
}

// checkCallSites verifies rule 2: in every function, a variable assigned
// from a call returning an Iterator must be closed or handed off. A use is
// a hand-off when the variable appears anywhere other than as the receiver
// of a method call — as a call argument, in a return, in a composite
// literal, on the right of an assignment.
func checkCallSites(pass *Pass, iface *types.Interface) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncCallSites(pass, fd.Body, iface)
		}
	}
}

// acquisition is one "v := someCall()" whose v is statically an iterator.
type acquisition struct {
	obj types.Object
	pos ast.Node
}

func checkFuncCallSites(pass *Pass, body *ast.BlockStmt, iface *types.Interface) {
	var acquired []acquisition
	record := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil || !implementsIterator(obj.Type(), iface) {
			return
		}
		acquired = append(acquired, acquisition{obj: obj, pos: id})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Rhs) == 1 && isRealCall(pass, node.Rhs[0]) {
				for _, lhs := range node.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id)
					}
				}
			}
		case *ast.ValueSpec:
			if len(node.Values) == 1 && isRealCall(pass, node.Values[0]) {
				for _, id := range node.Names {
					record(id)
				}
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}

	// Classify every use of each acquired variable. Idents consumed as the
	// receiver of a method call are neutral (Open/Next) or closing (Close);
	// any other appearance hands the iterator off and discharges this
	// function's obligation.
	closed := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	methodRecv := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		for _, a := range acquired {
			if a.obj == obj {
				methodRecv[id] = true
				if sel.Sel.Name == "Close" || sel.Sel.Name == "close" {
					closed[obj] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || methodRecv[id] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, a := range acquired {
			if a.obj == obj {
				escaped[obj] = true
			}
		}
		return true
	})
	reported := make(map[types.Object]bool)
	for _, a := range acquired {
		if closed[a.obj] || escaped[a.obj] || reported[a.obj] {
			continue
		}
		reported[a.obj] = true
		pass.Reportf(a.pos.Pos(), "iterator %q is never closed and never handed off (Close must be reachable on every path, including error returns)", a.obj.Name())
	}
}

// isRealCall reports whether e is a function or method call (not a type
// conversion): the source of a fresh iterator this function now owns.
func isRealCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	return true
}
