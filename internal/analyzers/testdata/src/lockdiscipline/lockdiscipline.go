// Package lockdiscipline is a seeded-bad fixture: locks that are never
// released, returns crossed under an open lock, direct double locks, and
// one-level call chains that re-acquire a held mutex are findings; the
// deferred and all-branches release shapes are not.
package lockdiscipline

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (b *box) neverReleased() {
	b.mu.Lock() // want `b\.mu\.Lock\(\) is never released in this function`
	b.n++
}

func (b *box) earlyReturn(cond bool) int {
	b.mu.Lock()
	if cond {
		return b.n // want `return while b\.mu is still Locked`
	}
	b.mu.Unlock()
	return 0
}

func (b *box) doubleLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mu.Lock() // want `b\.mu\.Lock\(\) while b\.mu is already held`
}

func (b *box) relocks() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) chainCaller() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.relocks() // want `call to b\.relocks\(\) Locks b\.mu which is already held`
}

func (b *box) deferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *box) deferredLiteral() int {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
	return b.n
}

func (b *box) allBranches(cond bool) int {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
		return 1
	}
	b.mu.Unlock()
	return 0
}

func (b *box) readers() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.n
}

// readThenRead is legal: concurrent RLocks do not deadlock each other, so
// the call-chain rule stays quiet on read-read.
func (b *box) readSnapshot() int {
	b.rw.RLock()
	n := b.n
	b.rw.RUnlock()
	return n
}

func (b *box) readThenRead() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.readSnapshot()
}

func (b *box) sequential() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.mu.Lock()
	b.n--
	b.mu.Unlock()
}

func (b *box) waived() {
	//lint:ignore lockdiscipline fixture: released by the caller that paired with this acquire
	b.mu.Lock()
}
