// Package timeinject is a seeded-bad fixture: breaker declares itself
// clock-injected by taking `now time.Time`, so wall-clock reads in any of
// its methods — including the one that forgot to take now — are findings.
// The boundary type never takes an injected now and may read the clock.
package timeinject

import "time"

type breaker struct {
	openedAt time.Time
	failures int
}

func (b *breaker) allow(now time.Time) bool {
	return now.Sub(b.openedAt) > time.Second
}

func (b *breaker) observe(failed bool) {
	if failed {
		b.failures++
		b.openedAt = time.Now() // want `time\.Now inside clock-injected method observe`
	}
}

func (b *breaker) age(now time.Time) time.Duration {
	_ = now
	return time.Since(b.openedAt) // want `time\.Since inside clock-injected method age`
}

func elapsed(now time.Time, start time.Time) time.Duration {
	_ = now
	return time.Now().Sub(start) // want `time\.Now inside clock-injected function elapsed`
}

type boundary struct{}

func (boundary) poll() time.Time {
	return time.Now()
}

func (b *breaker) waived() {
	//lint:ignore timeinject fixture: logging timestamp only, never fed to the state machine
	b.openedAt = time.Now()
}
