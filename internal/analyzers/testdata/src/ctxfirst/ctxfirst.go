// Package ctxfirst is a seeded-bad fixture for the ctxfirst analyzer:
// exported signatures with a misplaced context.Context and library code
// that conjures its own root context, plus the sanctioned convenience-
// wrapper suppression.
package ctxfirst

import "context"

type Engine struct{}

// RunContext follows the convention: context first. No finding.
func (e *Engine) RunContext(ctx context.Context, q string) error { return ctx.Err() }

// Execute buries the context mid-signature.
func (e *Engine) Execute(q string, ctx context.Context) error { // want `exported Execute takes context.Context as parameter 2`
	return ctx.Err()
}

// Run detaches from the caller's cancellation.
func (e *Engine) Run(q string) error {
	return e.RunContext(context.Background(), q) // want `context.Background in library code detaches work`
}

// Check is the documented no-cancellation convenience wrapper: suppressed.
func (e *Engine) Check(q string) error {
	//lint:ignore ctxfirst Check is the documented no-cancellation convenience wrapper over RunContext
	return e.RunContext(context.Background(), q)
}

// helper shows the rule reaches unexported code for root contexts.
func helper() error {
	return context.TODO().Err() // want `context.TODO in library code detaches work`
}
