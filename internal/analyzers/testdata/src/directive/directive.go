// Package directive is a fixture for the suppression mechanics themselves:
// a //lint:ignore with no justification must not silence the finding it
// sits on, and must be reported as a finding in its own right.
package directive

type Tuple []int

type Iterator interface {
	Open()
	Next() (Tuple, bool)
	Close()
}

type source struct{}

func (s *source) Open()               {}
func (s *source) Next() (Tuple, bool) { return nil, false }
func (s *source) Close()              {}

func newSource() Iterator { return &source{} }

func leaks() {
	//lint:ignore iterclose
	it := newSource()
	it.Open()
}
