// Package directive is a fixture for the suppression mechanics themselves:
// a //lint:ignore with no justification must not silence the finding it
// sits on, and must be reported as a finding in its own right; a justified
// directive that suppresses nothing is reported as stale.
package directive

type Tuple []int

type Iterator interface {
	Open()
	Next() (Tuple, bool)
	Close()
}

type source struct{}

func (s *source) Open()               {}
func (s *source) Next() (Tuple, bool) { return nil, false }
func (s *source) Close()              {}

func newSource() Iterator { return &source{} }

func leaks() {
	//lint:ignore iterclose
	it := newSource()
	it.Open()
}

func closesProperly() {
	//lint:ignore iterclose the iterator below is closed, so this waiver is stale
	it := newSource()
	it.Open()
	it.Close()
}

func typoedWaiver() {
	//lint:ignore iterclos justified, but the analyzer name is misspelled
	it := newSource()
	it.Open()
	it.Close()
}
