// Package goroleak is a seeded-bad fixture: goroutines without a lifecycle
// tie (no WaitGroup Done, no quit/done channel, no context watch) are
// findings; the tied shapes the service tier uses are not.
package goroleak

import (
	"context"
	"fmt"
	"sync"
)

type pool struct {
	wg   sync.WaitGroup
	quit chan struct{}
	in   chan int
}

func (p *pool) leakyAnonymous() {
	go func() { // want `goroutine has no lifecycle tie`
		fmt.Println("working forever")
	}()
}

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

func (p *pool) leakyNamed() {
	go spin() // want `goroutine has no lifecycle tie`
}

func (p *pool) leakyExternal() {
	go fmt.Println("body not visible") // want `goroutine has no lifecycle tie`
}

func (p *pool) tiedWaitGroup() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		fmt.Println("tracked")
	}()
	p.wg.Wait()
}

func (p *pool) loop() {
	for {
		select {
		case <-p.quit:
			return
		case v := <-p.in:
			_ = v
		}
	}
}

func (p *pool) tiedQuitChannel() {
	go p.loop()
}

func (p *pool) tiedRange() {
	go func() {
		for v := range p.in {
			_ = v
		}
	}()
}

func (p *pool) tiedContext(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			fmt.Println("cancellable")
		}
	}()
}

// run holds the select; start is the one-level indirection the recursion
// must follow.
func (p *pool) run() {
	<-p.quit
}

func (p *pool) start() {
	p.run()
}

func (p *pool) tiedIndirect() {
	go p.start()
}

func (p *pool) waived() {
	//lint:ignore goroleak fixture: lifetime owned by the test process, reaped on exit
	go spin()
}
