// Package atomicmix is a seeded-bad fixture: the hits field is accessed
// through sync/atomic, so every plain read or write of it is a finding;
// cold never goes through sync/atomic and stays free.
package atomicmix

import "sync/atomic"

type counters struct {
	hits int64
	cold int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) racyRead() int64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere`
}

func (c *counters) racyWrite() {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere`
}

func (c *counters) racyIncrement() {
	c.hits++ // want `field hits is accessed with sync/atomic elsewhere`
}

func (c *counters) plainOnly() int64 {
	c.cold++
	return c.cold
}

func (c *counters) waived() int64 {
	//lint:ignore atomicmix fixture: single-threaded teardown snapshot, all writers joined
	return c.hits
}
