// Package govcharge is a seeded-bad fixture for the govcharge analyzer:
// the local Governor type arms the pass, and the functions below mix
// governed and ungoverned materialization points plus a justified
// caller-charges suppression.
package govcharge

type Tuple []int

type Governor struct{ budget int }

func (g *Governor) charge(n int) bool { g.budget -= n; return g.budget >= 0 }

type Context struct{ gov *Governor }

func (c *Context) chargeTuple(op string, t Tuple) bool { return c.gov.charge(len(t)) }

// Bulk (block-granular) entry points mirroring the batch executor's.
func (g *Governor) ChargeTuples(op string, n int64) bool { g.budget -= int(n); return g.budget >= 0 }

func (g *Governor) ChargeBytesN(op string, n, bytes int64) bool {
	g.budget -= int(n)
	return g.budget >= 0
}

// governedAppend charges before retaining: no finding.
func governedAppend(c *Context, out []Tuple, t Tuple) []Tuple {
	if !c.chargeTuple("append", t) {
		return out
	}
	return append(out, t)
}

// ungovernedAppend grows a tuple buffer with no charge in sight.
func ungovernedAppend(out []Tuple, t Tuple) []Tuple {
	return append(out, t) // want `append to a tuple buffer in ungovernedAppend is not governed`
}

// ungovernedInsert retains keys in a membership set with no charge.
func ungovernedInsert(set map[string]struct{}, k string) {
	set[k] = struct{}{} // want `insert into a build/dedup table in ungovernedInsert is not governed`
}

// governedInsert charges in the same function: no finding.
func governedInsert(c *Context, set map[string]Tuple, k string, t Tuple) {
	if c.chargeTuple("insert", t) {
		set[k] = t
	}
}

// plainStrings buffers non-tuple data: exempt by design.
func plainStrings(out []string, s string) []string {
	return append(out, s)
}

// governedBlockAppend bulk-charges a whole block before retaining it: the
// batch executor's amortized pattern, recognized as governed.
func governedBlockAppend(g *Governor, out []Tuple, block []Tuple) []Tuple {
	if !g.ChargeTuples("block-append", int64(len(block))) {
		return out
	}
	return append(out, block...)
}

// governedBlockBytes uses the byte-accounting bulk entry point: no finding.
func governedBlockBytes(g *Governor, out []Tuple, block []Tuple) []Tuple {
	if !g.ChargeBytesN("block-append", int64(len(block)), 64*int64(len(block))) {
		return out
	}
	return append(out, block...)
}

// ungovernedBlockAppend grows a spool by whole blocks with no charge: the
// batch-executor bug class this analyzer must keep catching.
func ungovernedBlockAppend(out []Tuple, block []Tuple) []Tuple {
	return append(out, block...) // want `append to a tuple buffer in ungovernedBlockAppend is not governed`
}

// callerCharged is the documented caller-pays pattern: suppressed.
func callerCharged(out []Tuple, t Tuple) []Tuple {
	//lint:ignore govcharge the caller charges the governor per retained tuple before calling this helper
	return append(out, t)
}
