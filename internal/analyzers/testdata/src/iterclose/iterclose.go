// Package iterclose is a seeded-bad fixture for the iterclose analyzer:
// it defines a local Iterator contract and exercises both rules — child
// fields a Close method forgets, and call sites that drop an acquired
// iterator on the floor — plus a justified suppression.
package iterclose

type Tuple []int

type Iterator interface {
	Open()
	Next() (Tuple, bool)
	Close()
}

type source struct{}

func (s *source) Open()               {}
func (s *source) Next() (Tuple, bool) { return nil, false }
func (s *source) Close()              {}

func newSource() Iterator { return &source{} }

// leaky forgets its child in Close: rule 1 must fire.
type leaky struct {
	child Iterator
	buf   []Tuple
}

func (l *leaky) Open()               { l.child.Open() }
func (l *leaky) Next() (Tuple, bool) { return l.child.Next() }
func (l *leaky) Close()              {} // want `leaky.Close does not close child field "child"`

// tidy releases every child, directly and through a range: no findings.
type tidy struct {
	child Iterator
	kids  []Iterator
}

func (t *tidy) Open()               {}
func (t *tidy) Next() (Tuple, bool) { return nil, false }
func (t *tidy) Close() {
	t.child.Close()
	for _, k := range t.kids {
		k.Close()
	}
}

// spool is not an Iterator but owns a niladic close: still a resource the
// parent must release.
type spool struct{}

func (s *spool) close() {}

type spooler struct {
	sp    *spool
	child Iterator
}

func (s *spooler) Open()               {}
func (s *spooler) Next() (Tuple, bool) { return nil, false }
func (s *spooler) Close() { // want `spooler.Close does not close child field "sp"`
	s.child.Close()
}

// managed's child belongs to an external registry: justified suppression.
type managed struct {
	child Iterator
}

func (m *managed) Open()               {}
func (m *managed) Next() (Tuple, bool) { return nil, false }

//lint:ignore iterclose the registry that built this iterator closes the child on teardown
func (m *managed) Close() {}

// drains acquires an iterator, drives it, and never closes it: rule 2.
func drains() {
	it := newSource() // want `iterator "it" is never closed and never handed off`
	it.Open()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
}

// closes is the good call site: Close is reachable via defer.
func closes() {
	it := newSource()
	defer it.Close()
	it.Open()
}

// handsOff escapes the iterator to its caller: the obligation moves with it.
func handsOff() Iterator {
	it := newSource()
	it.Open()
	return it
}
