// Package errtaxonomy is a seeded-bad fixture for the errtaxonomy
// analyzer: two Err-wrapping structs make it a typed-error-family package,
// so bare errors must not escape exported functions, and %v/%s wrapping of
// errors is flagged everywhere.
package errtaxonomy

import (
	"errors"
	"fmt"
)

type ParseError struct {
	Msg string
	Err error
}

func (e *ParseError) Error() string { return e.Msg }
func (e *ParseError) Unwrap() error { return e.Err }

type ExecError struct {
	Op  string
	Err error
}

func (e *ExecError) Error() string { return e.Op }
func (e *ExecError) Unwrap() error { return e.Err }

var errSentinel = errors.New("sentinel")

// Parse leaks untyped errors through the exported boundary: two findings.
func Parse(input string) error {
	if input == "" {
		return errors.New("empty input") // want `bare errors.New escapes exported Parse`
	}
	if len(input) > 10 {
		return fmt.Errorf("input %q too long", input) // want `bare fmt.Errorf escapes exported Parse`
	}
	return nil
}

// Wrapped keeps the chain intact: typed family value or %w. No findings.
func Wrapped(input string) error {
	if input == "" {
		return &ParseError{Msg: "empty", Err: errSentinel}
	}
	return fmt.Errorf("parse %q: %w", input, errSentinel)
}

// internalHelper is unexported: bare errors are its own business.
func internalHelper() error {
	return errors.New("internal detail")
}

// Flattened breaks errors.Is/As twice over: an untyped error escapes the
// boundary AND the cause is formatted with %v.
func Flattened(err error) error {
	return fmt.Errorf("run failed: %v", err) // want `bare fmt.Errorf escapes exported Flattened` want `error formatted with %v loses the chain`
}

// flattenInternal shows the wrapping rule applies in unexported code too.
func flattenInternal(err error) {
	_ = fmt.Errorf("oops: %s", err) // want `error formatted with %s loses the chain`
}

// Sanctioned flattens on purpose, with the justification on record.
func Sanctioned(err error) error {
	//lint:ignore errtaxonomy this message intentionally flattens the cause for the public audit log
	return fmt.Errorf("audit: %v", err)
}
