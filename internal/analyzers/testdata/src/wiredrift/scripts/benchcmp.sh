#!/bin/sh
# Fixture stand-in for the real benchcmp.sh: the analyzer only reads the
# quoted counter list inside the awk split call. base_tuples_read no longer
# matches any wire tag in the fixture package.
awk '
BEGIN {
	ncounters = split("base_tuples_read comparisons " \
	                  "sheds",
	                  counters, " ");
}' </dev/null
