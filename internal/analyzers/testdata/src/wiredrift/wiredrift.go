// Package wiredrift is a seeded-bad fixture. It carries its own README.md
// and scripts/benchcmp.sh next to this file, and its Snapshot deliberately
// tags the read counter base_tuples_red while both artifacts still say
// base_tuples_read — the half-done rename the analyzer exists to catch.
// The README also documents a ghost_counter no wire tag backs.
package wiredrift

// Snapshot stands in for core.Snapshot: the exhaustively documented core
// of the wire schema.
type Snapshot struct {
	Version        int   `json:"version"`
	BaseTuplesRead int64 `json:"base_tuples_red"`
	Comparisons    int64 `json:"comparisons"`
}

type counters struct {
	Sheds int64 `json:"sheds"`
}

type StatsReport struct { // want `benchcmp\.sh counter "base_tuples_read" does not match any JSON tag` want `README stats-schema entry "base_tuples_read" does not match any JSON tag` want `README stats-schema entry "ghost_counter" does not match any JSON tag` want `Snapshot JSON tag "base_tuples_red" is missing from the README stats-schema table`
	Service counters            `json:"service"`
	Tenants map[string]Snapshot `json:"tenants"`
}
