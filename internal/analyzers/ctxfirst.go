package analyzers

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the context-first API convention the engine adopted in
// PR 1:
//
//  1. An exported function or method that takes a context.Context takes it
//     as its first parameter — the Go convention every caller of
//     QueryContext/RunContext/StreamContext relies on.
//
//  2. context.Background() and context.TODO() are forbidden outside
//     package main (and test files, which the suite skips entirely):
//     library code that conjures its own root context detaches the work
//     from the caller's cancellation and deadline. The engine's documented
//     no-cancellation convenience wrappers (Run, Query, Check, Stream)
//     carry a justified //lint:ignore ctxfirst.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported APIs take context.Context first; context.Background/TODO stay out of library code",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Name.IsExported() {
				checkCtxPosition(pass, fd)
			}
			if fd.Body != nil && pass.Pkg.Name() != "main" {
				checkRootContexts(pass, fd)
			}
		}
	}
	return nil
}

// checkCtxPosition flags an exported signature whose context.Context
// parameter is not the first.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && pos > 0 {
			pass.Reportf(field.Pos(), "exported %s takes context.Context as parameter %d: it must be the first parameter", fd.Name.Name, pos+1)
		}
		pos += n
	}
}

func isContextType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkRootContexts flags context.Background() / context.TODO() calls.
func checkRootContexts(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(pass, call) {
		case "context.Background", "context.TODO":
			pass.Reportf(call.Pos(), "%s in library code detaches work from the caller's cancellation: accept a context.Context instead", calleeText(call))
		}
		return true
	})
}

func calleeText(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
	}
	return "context root constructor"
}
