// Package views implements the view mechanism Definition 1 of the paper
// presupposes: a range may be "a relation or a view", and the database
// domain itself is described as "the view 'dom'". A view is a named open
// query; occurrences of the view's name in atoms are expanded inline —
// the view body is substituted with its open variables bound to the
// atom's arguments and all other bound variables freshly renamed — before
// normalization, so Phase 1 and Phase 2 never see view atoms.
//
// Inline expansion is exactly the paper's reading of Definition 1's
// "allowing view definitions local to a query": after expansion, the view
// body participates in range recognition, miniscoping and producer/filter
// decisions like any other subformula.
package views

import (
	"fmt"

	"repro/internal/calculus"
	"repro/internal/parser"
)

// View is a named open query acting as a derived relation.
type View struct {
	Name string
	// Params are the view's column variables, in order.
	Params []string
	// Body is the defining formula; its free variables are exactly Params.
	Body calculus.Formula
}

// Arity returns the number of view columns.
func (v *View) Arity() int { return len(v.Params) }

// Registry holds named views and expands them in queries.
type Registry struct {
	views map[string]*View
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{views: make(map[string]*View)} }

// Define registers a view from its surface definition, e.g.
//
//	Define("cs_member", `{ x | member(x, "cs") }`)
//
// The definition must be an open query. Views may reference other views
// defined earlier; cycles are rejected at expansion time.
func (r *Registry) Define(name, definition string) (*View, error) {
	if _, dup := r.views[name]; dup {
		return nil, fmt.Errorf("views: view %q already defined", name)
	}
	q, err := parser.Parse(definition)
	if err != nil {
		return nil, fmt.Errorf("views: defining %q: %w", name, err)
	}
	return r.DefineQuery(name, q)
}

// DefineQuery registers a view from a parsed open query.
func (r *Registry) DefineQuery(name string, q parser.Query) (*View, error) {
	if !q.IsOpen() {
		return nil, fmt.Errorf("views: view %q must be defined by an open query", name)
	}
	if _, dup := r.views[name]; dup {
		return nil, fmt.Errorf("views: view %q already defined", name)
	}
	free := calculus.FreeVars(q.Body)
	if !free.Equal(calculus.NewVarSet(q.OpenVars...)) {
		return nil, fmt.Errorf("views: view %q body must use exactly its column variables %v", name, q.OpenVars)
	}
	v := &View{Name: name, Params: q.OpenVars, Body: q.Body}
	r.views[name] = v
	return v, nil
}

// Has reports whether a view with that name exists.
func (r *Registry) Has(name string) bool {
	_, ok := r.views[name]
	return ok
}

// Names returns the defined view names (unordered).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.views))
	for n := range r.views {
		out = append(out, n)
	}
	return out
}

// maxDepth bounds transitive view expansion; exceeding it means a cycle.
const maxDepth = 64

// Expand rewrites every view atom in the query into the view's body.
// Nested views expand transitively; cyclic definitions are reported.
func (r *Registry) Expand(q parser.Query) (parser.Query, error) {
	if len(r.views) == 0 {
		return q, nil
	}
	gen := calculus.NewNameGen(calculus.AllVars(q.Body))
	body, err := r.expand(q.Body, gen, 0)
	if err != nil {
		return parser.Query{}, err
	}
	return parser.Query{OpenVars: q.OpenVars, Body: body}, nil
}

// ExpandFormula is Expand for a bare formula.
func (r *Registry) ExpandFormula(f calculus.Formula) (calculus.Formula, error) {
	q, err := r.Expand(parser.Query{Body: f})
	if err != nil {
		return nil, err
	}
	return q.Body, nil
}

func (r *Registry) expand(f calculus.Formula, gen *calculus.NameGen, depth int) (calculus.Formula, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("views: expansion exceeds depth %d — cyclic view definitions?", maxDepth)
	}
	switch n := f.(type) {
	case calculus.Atom:
		v, ok := r.views[n.Pred]
		if !ok {
			return f, nil
		}
		inst, err := r.instantiate(v, n.Args, gen)
		if err != nil {
			return nil, err
		}
		// The instantiated body may itself contain view atoms.
		return r.expand(inst, gen, depth+1)
	case calculus.Cmp:
		return f, nil
	case calculus.Not:
		inner, err := r.expand(n.F, gen, depth)
		if err != nil {
			return nil, err
		}
		return calculus.Not{F: inner}, nil
	case calculus.And:
		l, err := r.expand(n.L, gen, depth)
		if err != nil {
			return nil, err
		}
		rr, err := r.expand(n.R, gen, depth)
		if err != nil {
			return nil, err
		}
		return calculus.And{L: l, R: rr}, nil
	case calculus.Or:
		l, err := r.expand(n.L, gen, depth)
		if err != nil {
			return nil, err
		}
		rr, err := r.expand(n.R, gen, depth)
		if err != nil {
			return nil, err
		}
		return calculus.Or{L: l, R: rr}, nil
	case calculus.Implies:
		l, err := r.expand(n.L, gen, depth)
		if err != nil {
			return nil, err
		}
		rr, err := r.expand(n.R, gen, depth)
		if err != nil {
			return nil, err
		}
		return calculus.Implies{L: l, R: rr}, nil
	case calculus.Exists:
		inner, err := r.expand(n.Body, gen, depth)
		if err != nil {
			return nil, err
		}
		return calculus.Exists{Vars: n.Vars, Body: inner}, nil
	case calculus.Forall:
		inner, err := r.expand(n.Body, gen, depth)
		if err != nil {
			return nil, err
		}
		return calculus.Forall{Vars: n.Vars, Body: inner}, nil
	default:
		return nil, fmt.Errorf("views: unknown formula %T", f)
	}
}

// instantiate builds the view body with its parameters bound to the
// atom's argument terms. Equal view columns forced by a repeated variable
// or constant argument become the corresponding substitution directly;
// the view's internal bound variables are freshly renamed to keep the
// whole query standardized apart.
func (r *Registry) instantiate(v *View, args []calculus.Term, gen *calculus.NameGen) (calculus.Formula, error) {
	if len(args) != len(v.Params) {
		return nil, fmt.Errorf("views: view %q has %d columns, atom supplies %d", v.Name, len(v.Params), len(args))
	}
	body := calculus.RenameBound(v.Body, gen)
	sub := make(map[string]calculus.Term, len(args))
	for i, p := range v.Params {
		sub[p] = args[i]
	}
	return calculus.Subst(body, sub), nil
}
