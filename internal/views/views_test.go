package views

import (
	"strings"
	"testing"

	"repro/internal/calculus"
	"repro/internal/parser"
)

func TestDefineRejectsClosed(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Define("v", `exists x: p(x)`); err == nil {
		t.Fatal("closed definitions must be rejected")
	}
}

func TestDefineRejectsBadColumns(t *testing.T) {
	r := NewRegistry()
	// The registry itself validates the column/free-variable
	// correspondence: y is declared but absent from the body.
	if _, err := r.Define("v", `{ x, y | p(x) }`); err == nil {
		t.Fatal("column variables must all occur in the body")
	}
}

func TestDefineRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Define("v", `{ x | p(x) }`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Define("v", `{ x | q(x) }`); err == nil {
		t.Fatal("duplicate view must be rejected")
	}
	if !r.Has("v") || r.Has("w") {
		t.Fatal("Has broken")
	}
}

func TestExpandSimple(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Define("cs_member", `{ x | member(x, "cs") }`); err != nil {
		t.Fatal(err)
	}
	q, err := r.Expand(parser.MustParse(`{ y | cs_member(y) and prof(y) }`))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParse(`{ y | member(y, "cs") and prof(y) }`)
	if !calculus.AlphaEqual(q.Body, want.Body) {
		t.Fatalf("got %s, want %s", q.Body, want.Body)
	}
}

func TestExpandConstantArgument(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Define("knows", `{ x, y | exists p: works_on(x, p) and works_on(y, p) }`); err != nil {
		t.Fatal(err)
	}
	q, err := r.Expand(parser.MustParse(`{ x | knows(x, "ann") }`))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParse(`{ x | exists p: works_on(x, p) and works_on("ann", p) }`)
	if !calculus.AlphaEqual(q.Body, want.Body) {
		t.Fatalf("got %s, want %s", q.Body, want.Body)
	}
}

func TestExpandAvoidsCapture(t *testing.T) {
	r := NewRegistry()
	// The view binds p internally; the caller uses p as its open variable.
	if _, err := r.Define("busy", `{ x | exists p: works_on(x, p) }`); err != nil {
		t.Fatal(err)
	}
	q, err := r.Expand(parser.MustParse(`{ p | emp(p) and busy(p) }`))
	if err != nil {
		t.Fatal(err)
	}
	// The view's bound p must have been renamed away from the caller's p.
	fv := calculus.FreeVars(q.Body)
	if !fv.Equal(calculus.NewVarSet("p")) {
		t.Fatalf("free variables after expansion: %v", fv.Sorted())
	}
	var sawInnerP bool
	calculus.Walk(q.Body, func(g calculus.Formula) {
		if ex, ok := g.(calculus.Exists); ok {
			for _, v := range ex.Vars {
				if v == "p" {
					sawInnerP = true
				}
			}
		}
	})
	if sawInnerP {
		t.Fatalf("view-bound variable captured the caller's p: %s", q.Body)
	}
}

func TestExpandNestedViews(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Define("cs_member", `{ x | member(x, "cs") }`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Define("cs_prof", `{ x | cs_member(x) and prof(x) }`); err != nil {
		t.Fatal(err)
	}
	q, err := r.Expand(parser.MustParse(`exists z: cs_prof(z)`))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(q.Body.String(), "cs_") {
		t.Fatalf("nested views not fully expanded: %s", q.Body)
	}
}

func TestExpandCycleDetected(t *testing.T) {
	r := NewRegistry()
	// Mutually recursive views can only be built via DefineQuery in two
	// steps; simulate with a self-reference.
	q := parser.MustParse(`{ x | loop_v(x) and p(x) }`)
	if _, err := r.DefineQuery("loop_v", q); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Expand(parser.MustParse(`{ x | loop_v(x) }`)); err == nil {
		t.Fatal("cyclic expansion must be detected")
	}
}

func TestExpandArityMismatch(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Define("v", `{ x, y | r(x, y) }`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Expand(parser.MustParse(`{ x | v(x) }`)); err == nil {
		t.Fatal("arity mismatch must be reported")
	}
}

func TestExpandInsideQuantifiersAndNegation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Define("attends_any", `{ x | exists y: attends(x, y) }`); err != nil {
		t.Fatal(err)
	}
	q, err := r.Expand(parser.MustParse(`forall s: student(s) => attends_any(s)`))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParse(`forall s: student(s) => exists y: attends(s, y)`)
	if !calculus.AlphaEqual(q.Body, want.Body) {
		t.Fatalf("got %s, want %s", q.Body, want.Body)
	}
	q2, err := r.Expand(parser.MustParse(`{ s | student(s) and not attends_any(s) }`))
	if err != nil {
		t.Fatal(err)
	}
	want2 := parser.MustParse(`{ s | student(s) and not exists y: attends(s, y) }`)
	if !calculus.AlphaEqual(q2.Body, want2.Body) {
		t.Fatalf("got %s, want %s", q2.Body, want2.Body)
	}
}

func TestNoViewsPassThrough(t *testing.T) {
	r := NewRegistry()
	q := parser.MustParse(`{ x | p(x) }`)
	out, err := r.Expand(q)
	if err != nil {
		t.Fatal(err)
	}
	if !calculus.Equal(out.Body, q.Body) {
		t.Fatal("empty registry must pass queries through unchanged")
	}
}

func TestExpandErrorsPropagate(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Define("v", `{ x, y | r(x, y) }`); err != nil {
		t.Fatal(err)
	}
	// Arity errors must surface through every connective position.
	for _, input := range []string{
		`not v(x)`,
		`v(x) and p(x)`,
		`p(x) or v(x)`,
		`exists x: v(x)`,
		`forall x: p(x) => v(x)`,
	} {
		q := parser.MustParse(input)
		if _, err := r.Expand(q); err == nil {
			t.Errorf("Expand(%q) must fail on arity mismatch", input)
		}
	}
}

func TestNamesAndExpandFormula(t *testing.T) {
	r := NewRegistry()
	r.Define("a", `{ x | p(x) }`)
	r.Define("b", `{ x | q(x) }`)
	names := r.Names()
	if len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
	f, err := r.ExpandFormula(parser.MustParse(`exists z: a(z) and b(z)`).Body)
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParse(`exists z: p(z) and q(z)`).Body
	if !calculus.AlphaEqual(f, want) {
		t.Fatalf("got %s, want %s", f, want)
	}
}

func TestExpandComparisonPassThrough(t *testing.T) {
	r := NewRegistry()
	r.Define("v", `{ x | p(x) }`)
	q, err := r.Expand(parser.MustParse(`{ x | v(x) and x != "a" }`))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParse(`{ x | p(x) and x != "a" }`).Body
	if !calculus.AlphaEqual(q.Body, want) {
		t.Fatalf("got %s", q.Body)
	}
}
