package cost

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/translate"
)

func fixture() *storage.Catalog {
	cat := storage.NewCatalog()
	p := cat.MustDefine("P", relation.NewSchema("v"))
	for i := 0; i < 100; i++ {
		p.InsertValues(relation.Int(int64(i)))
	}
	q := cat.MustDefine("Q", relation.NewSchema("v", "w"))
	for i := 0; i < 50; i++ {
		q.InsertValues(relation.Int(int64(i)), relation.Int(int64(i%5)))
	}
	return cat
}

func scan(cat *storage.Catalog, name string) *algebra.Scan {
	r, _ := cat.Relation(name)
	return algebra.NewScan(name, r.Schema())
}

func TestEstimateScanExact(t *testing.T) {
	cat := fixture()
	m := New(cat)
	e, err := m.Estimate(scan(cat, "P"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Rows != 100 || e.Cost != 100 {
		t.Fatalf("scan estimate = %+v, want rows=100 cost=100", e)
	}
}

func TestEstimateSelectUsesDistinct(t *testing.T) {
	cat := fixture()
	m := New(cat)
	// Q's second column has exactly 5 distinct values: equality against a
	// constant must estimate 50/5 = 10 rows.
	sel := &algebra.Select{Input: scan(cat, "Q"), Pred: algebra.CmpConst{Col: 1, Op: algebra.OpEq, Const: relation.Int(3)}}
	e, err := m.Estimate(sel)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rows < 9 || e.Rows > 11 {
		t.Fatalf("selectivity from distinct count: rows = %.1f, want ≈10", e.Rows)
	}
}

func TestEstimateMonotonicity(t *testing.T) {
	cat := fixture()
	m := New(cat)
	base, _ := m.Estimate(scan(cat, "P"))
	sel, _ := m.Estimate(&algebra.Select{Input: scan(cat, "P"), Pred: algebra.CmpConst{Col: 0, Op: algebra.OpLt, Const: relation.Int(10)}})
	if sel.Rows > base.Rows {
		t.Fatal("selection must not increase rows")
	}
	if sel.Cost < base.Cost {
		t.Fatal("selection adds cost")
	}
	prod, _ := m.Estimate(&algebra.Product{Left: scan(cat, "P"), Right: scan(cat, "Q")})
	join, _ := m.Estimate(&algebra.Join{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: []algebra.ColPair{{Left: 0, Right: 0}}})
	if join.Rows >= prod.Rows {
		t.Fatal("an equi-join must estimate fewer rows than the product")
	}
	if prod.Cost <= join.Cost {
		t.Fatal("the product must cost more than the hash join")
	}
}

func TestEstimateJoinFamilyShares(t *testing.T) {
	cat := fixture()
	m := New(cat)
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	semi, _ := m.Estimate(&algebra.SemiJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on})
	comp, _ := m.Estimate(&algebra.ComplementJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on})
	if semi.Cost != comp.Cost {
		t.Fatalf("the paper's point: one cost schema for the join family; semi %.0f vs complement %.0f", semi.Cost, comp.Cost)
	}
	if semi.Rows+comp.Rows < 99 || semi.Rows+comp.Rows > 101 {
		t.Fatalf("semi+complement shares must partition the left: %.0f + %.0f", semi.Rows, comp.Rows)
	}
	coj, _ := m.Estimate(&algebra.ConstrainedOuterJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on})
	if coj.Rows != 100 {
		t.Fatalf("constrained outer-join is left-preserving: rows = %.0f", coj.Rows)
	}
	gated, _ := m.Estimate(&algebra.ConstrainedOuterJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: on,
		Constraint: []algebra.NullCond{{Col: 0, IsNull: true}}})
	if gated.Cost >= coj.Cost {
		t.Fatal("a constraint must reduce estimated probe cost")
	}
}

// TestModelRanksStrategies: the model must order the translation
// strategies like the measured costs do — Bry cheapest, Codd worst —
// on the paper's nested query (E11).
func TestModelRanksStrategies(t *testing.T) {
	cat := dataset.University(dataset.DefaultUniversity(60))
	m := New(cat)
	q, err := rewrite.Normalize(parser.MustParse(`{ x | student(x) and exists y: cs_lecture(y) and attends(x, y) and not skill(x, "db") }`))
	if err != nil {
		t.Fatal(err)
	}
	bryPlan, err := translate.NewBry(cat).TranslateOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	coddPlan, err := translate.NewCodd(cat).TranslateOpen(q)
	if err != nil {
		t.Fatal(err)
	}
	bryEst, err := m.Estimate(bryPlan)
	if err != nil {
		t.Fatal(err)
	}
	coddEst, err := m.Estimate(coddPlan)
	if err != nil {
		t.Fatal(err)
	}
	if bryEst.Cost >= coddEst.Cost {
		t.Fatalf("model must rank Bry (%.0f) below Codd (%.0f)", bryEst.Cost, coddEst.Cost)
	}
	// And the measured ordering agrees.
	bryCtx := exec.NewContext(cat)
	if _, err := exec.Run(bryCtx, bryPlan); err != nil {
		t.Fatal(err)
	}
	coddCtx := exec.NewContext(cat)
	if _, err := exec.Run(coddCtx, coddPlan); err != nil {
		t.Fatal(err)
	}
	if bryCtx.Stats.Comparisons >= coddCtx.Stats.Comparisons {
		t.Fatalf("measured ordering disagrees: bry %d vs codd %d", bryCtx.Stats.Comparisons, coddCtx.Stats.Comparisons)
	}
}

func TestEstimateBool(t *testing.T) {
	cat := fixture()
	m := New(cat)
	ne := &algebra.NotEmpty{Input: scan(cat, "P")}
	full, _ := m.Estimate(scan(cat, "P"))
	e, err := m.EstimateBool(ne)
	if err != nil {
		t.Fatal(err)
	}
	if e.Cost >= full.Cost {
		t.Fatal("emptiness tests must be credited with early termination")
	}
	and, err := m.EstimateBool(&algebra.BoolAnd{Inputs: []algebra.BoolPlan{ne, &algebra.IsEmpty{Input: scan(cat, "Q")}}})
	if err != nil {
		t.Fatal(err)
	}
	if and.Cost <= e.Cost {
		t.Fatal("conjunction accumulates cost")
	}
	c, err := m.EstimateBool(&algebra.BoolConst{Value: true})
	if err != nil || c.Cost != 0 {
		t.Fatalf("constants are free: %+v %v", c, err)
	}
	if _, err := m.EstimateBool(&algebra.BoolNot{Input: ne}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateErrors(t *testing.T) {
	cat := fixture()
	m := New(cat)
	if _, err := m.Estimate(algebra.NewScan("missing", relation.NewSchema("v"))); err == nil {
		t.Fatal("unknown relation must fail")
	}
	if _, err := m.Explain(algebra.NewScan("missing", relation.NewSchema("v"))); err == nil {
		t.Fatal("Explain propagates errors")
	}
}

func TestExplainAnnotates(t *testing.T) {
	cat := fixture()
	m := New(cat)
	plan := &algebra.SemiJoin{Left: scan(cat, "P"), Right: scan(cat, "Q"), On: []algebra.ColPair{{Left: 0, Right: 0}}}
	out, err := m.Explain(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows≈") || !strings.Contains(out, "cost≈") {
		t.Fatalf("missing annotations:\n%s", out)
	}
	if !strings.Contains(out, "Scan P") || !strings.Contains(out, "Scan Q") {
		t.Fatalf("missing children:\n%s", out)
	}
}

// TestEstimateAllOperators walks every node type once; estimates must be
// positive, finite, and children's errors must propagate.
func TestEstimateAllOperators(t *testing.T) {
	cat := fixture()
	m := New(cat)
	on := []algebra.ColPair{{Left: 0, Right: 0}}
	p, q := scan(cat, "P"), scan(cat, "Q")
	plans := []algebra.Plan{
		&algebra.OuterJoin{Left: p, Right: q, On: on},
		&algebra.Union{Left: p, Right: p},
		&algebra.Diff{Left: p, Right: p},
		&algebra.Intersect{Left: p, Right: p},
		&algebra.Division{Dividend: q, Divisor: p, KeyCols: []int{0}, DivCols: []int{1}},
		&algebra.GroupCount{Input: q, GroupCols: []int{0}},
		&algebra.GroupCount{Input: q},
		&algebra.Materialize{Input: p, Label: "tmp"},
		&algebra.Project{Input: q, Cols: []int{0}, NoDedup: true},
		&algebra.Select{Input: p, Pred: algebra.Or{Preds: []algebra.Pred{
			algebra.IsNull{Col: 0}, algebra.NotNull{Col: 0},
			algebra.Not{Pred: algebra.True{}},
			algebra.CmpCols{Left: 0, Op: algebra.OpEq, Right: 0},
			algebra.CmpCols{Left: 0, Op: algebra.OpNe, Right: 0},
			algebra.CmpConst{Col: 0, Op: algebra.OpNe, Const: relation.Int(1)},
			algebra.CmpConst{Col: 0, Op: algebra.OpLt, Const: relation.Int(1)},
		}}},
		&algebra.Join{Left: p, Right: q, On: nil}, // degenerate cross join
		&algebra.Join{Left: p, Right: q, On: on, Residual: algebra.True{}},
	}
	for _, plan := range plans {
		e, err := m.Estimate(plan)
		if err != nil {
			t.Fatalf("%s: %v", plan.Describe(), err)
		}
		if e.Rows < 0 || e.Cost <= 0 {
			t.Fatalf("%s: implausible estimate %+v", plan.Describe(), e)
		}
	}
	// Error propagation through each binary side.
	bad := algebra.NewScan("missing", relation.NewSchema("v"))
	for _, plan := range []algebra.Plan{
		&algebra.Join{Left: bad, Right: q, On: on},
		&algebra.Join{Left: p, Right: bad, On: on},
		&algebra.Union{Left: bad, Right: q},
		&algebra.Select{Input: bad, Pred: algebra.True{}},
		&algebra.GroupCount{Input: bad},
	} {
		if _, err := m.Estimate(plan); err == nil {
			t.Fatalf("%s: error not propagated", plan.Describe())
		}
	}
}

func TestSelectivityDistinctFallbacks(t *testing.T) {
	cat := fixture()
	m := New(cat)
	// Equality over a non-scan input falls back to the heuristic.
	proj := &algebra.Project{Input: scan(cat, "Q"), Cols: []int{1}}
	sel := &algebra.Select{Input: proj, Pred: algebra.CmpConst{Col: 0, Op: algebra.OpEq, Const: relation.Int(3)}}
	if _, err := m.Estimate(sel); err != nil {
		t.Fatal(err)
	}
	// Out-of-range column in distinctOf returns the fallback path.
	if d := m.distinctOf("Q", 99); d != 0 {
		t.Fatalf("out-of-range distinct = %v", d)
	}
	if d := m.distinctOf("missing", 0); d != 0 {
		t.Fatalf("missing relation distinct = %v", d)
	}
}

func TestEstimateSharedPricedOncePlusReplay(t *testing.T) {
	cat := fixture()
	m := New(cat)
	sub := &algebra.SemiJoin{
		Left:  scan(cat, "P"),
		Right: scan(cat, "Q"),
		On:    []algebra.ColPair{{Left: 0, Right: 0}},
	}
	subEst, err := m.Estimate(sub)
	if err != nil {
		t.Fatal(err)
	}

	sh := algebra.NewShared(sub)
	both := &algebra.Union{Left: sh, Right: sh}
	plain := &algebra.Union{Left: sub, Right: sub}
	shared, err := m.Estimate(both)
	if err != nil {
		t.Fatal(err)
	}
	unshared, err := m.Estimate(plain)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Cost >= unshared.Cost {
		t.Fatalf("sharing must be cheaper: shared=%.0f unshared=%.0f", shared.Cost, unshared.Cost)
	}
	// The second occurrence costs a replay (its rows), not a re-run, while
	// the first additionally pays one spooling pass: the net saving is the
	// subtree cost minus replay minus spool.
	saving := unshared.Cost - shared.Cost
	want := subEst.Cost - 2*subEst.Rows
	if diff := saving - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("saving = %.2f, want %.2f", saving, want)
	}
	// Estimates are per-call deterministic: re-estimating the same node
	// (as Explain's walk does) must not accumulate shared-seen state.
	again, err := m.Estimate(both)
	if err != nil {
		t.Fatal(err)
	}
	if again != shared {
		t.Fatalf("re-estimate drifted: %+v vs %+v", again, shared)
	}
}

func TestExplainAnnotatesShared(t *testing.T) {
	cat := fixture()
	m := New(cat)
	sh := algebra.NewShared(&algebra.SemiJoin{
		Left:  scan(cat, "P"),
		Right: scan(cat, "Q"),
		On:    []algebra.ColPair{{Left: 0, Right: 0}},
	})
	out, err := m.Explain(&algebra.Union{Left: sh, Right: sh})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Shared#") {
		t.Fatalf("Explain must show Shared nodes:\n%s", out)
	}
}
