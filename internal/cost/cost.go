// Package cost implements the cost-estimation model the paper's conclusion
// calls for: "an algebraic translation basically relying on a unique
// operator give rise to simplifying the cost estimation model. Further
// research should be devoted to investigating this issue."
//
// Because the Bry translation expresses quantifiers and disjunctions with
// variants of one operator family — join, semi-join, complement-join,
// (constrained) outer-join — a single probe-based estimation schema covers
// nearly every node: each variant reads its inputs, builds or consults a
// probe structure on the right, and probes once per left tuple; they
// differ only in the output-cardinality factor. The model uses exact base
// cardinalities and per-column distinct counts from the catalog, and
// documented heuristic selectivities where the exact value would require
// full evaluation.
//
// Estimates drive nothing automatically (the paper explicitly leaves the
// choice strategy out of scope); they serve EXPLAIN output and the E11
// experiment, which checks that the model ranks the translation strategies
// in the same order as the measured costs.
package cost

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Estimate is the model's prediction for one plan node.
type Estimate struct {
	// Rows is the estimated output cardinality.
	Rows float64
	// Cost accumulates estimated work: tuples read, probe-structure
	// inserts and probes, in the same spirit as exec.Stats.
	Cost float64
}

// Model estimates plans over one catalog.
type Model struct {
	cat *storage.Catalog
	// distinct caches per-relation, per-column distinct counts.
	distinct map[string][]float64
	// parallelism mirrors the executor's partition fan-out: the join
	// family's build+probe work divides across partitions, at the price of
	// a sequential scatter pass over both inputs.
	parallelism float64
	// batch mirrors the executor's block capacity (SetBatchSize): per-tuple
	// iteration bookkeeping divides by it, so block execution discounts the
	// probe schema's bookkeeping share ~1000× at the default capacity.
	batch float64
}

// Heuristic selectivities for predicates whose exact value the model does
// not derive; standard textbook constants.
const (
	selEq    = 0.1
	selRange = 1.0 / 3
	selNull  = 0.1
	// joinKeyShare approximates the share of left probes finding a match.
	joinKeyShare = 0.5
	// partitionShare is the per-tuple cost of the parallel executor's
	// scatter pass relative to a build/probe step: a bare hash and append.
	partitionShare = 0.25
	// blockOverhead is the iteration bookkeeping a probe step carries —
	// cancellation poll, fault hook, governor charge — relative to the step
	// itself. The tuple executor pays it per tuple; the batch executor pays
	// it once per block, so the modelled term is blockOverhead/batch per
	// tuple: ~2.4e-4 at the default block capacity, visible in EXPLAIN but
	// far too small to reorder translation strategies (E11).
	blockOverhead = 0.25
)

// New builds a model over the catalog (serial tuple-at-a-time executor).
func New(cat *storage.Catalog) *Model {
	return &Model{cat: cat, distinct: make(map[string][]float64), parallelism: 1, batch: 1}
}

// SetParallelism tells the model the executor's partition fan-out, so the
// join family's estimates reflect the divided build+probe work.
func (m *Model) SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	m.parallelism = float64(p)
}

// SetBatchSize tells the model the executor's block capacity, amortizing
// the probe schema's per-tuple bookkeeping term across it. Values below 2
// (including the tuple-at-a-time executor's) keep the per-tuple charge.
func (m *Model) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	m.batch = float64(n)
}

// Estimate walks the plan bottom-up. Each call prices the plan standalone:
// the first occurrence of a Shared fingerprint pays its full subtree cost
// plus a spooling pass, repeats pay only the replay — tracked in a per-call
// set so Explain's node-by-node walk stays deterministic.
func (m *Model) Estimate(p algebra.Plan) (Estimate, error) {
	return m.est(p, make(map[uint64]bool))
}

func (m *Model) est(p algebra.Plan, seen map[uint64]bool) (Estimate, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		r, err := m.cat.Relation(n.Name)
		if err != nil {
			return Estimate{}, err
		}
		rows := float64(r.Len())
		return Estimate{Rows: rows, Cost: rows}, nil
	case *algebra.Select:
		in, err := m.est(n.Input, seen)
		if err != nil {
			return Estimate{}, err
		}
		sel := m.selectivity(n.Pred, n.Input)
		return Estimate{Rows: in.Rows * sel, Cost: in.Cost + in.Rows}, nil
	case *algebra.Project:
		in, err := m.est(n.Input, seen)
		if err != nil {
			return Estimate{}, err
		}
		rows := in.Rows
		if !n.NoDedup {
			// Deduplication shrinks wide inputs gently; without column
			// provenance the model uses a sublinear cap.
			rows = math.Min(in.Rows, math.Pow(in.Rows, 0.9)+1)
		}
		return Estimate{Rows: rows, Cost: in.Cost + in.Rows}, nil
	case *algebra.Product:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: l.Rows * r.Rows, Cost: l.Cost + r.Cost + l.Rows*r.Rows}, nil
	case *algebra.Join:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		rows := joinRows(l.Rows, r.Rows, len(n.On))
		if n.Residual != nil {
			rows *= selRange
		}
		return Estimate{Rows: rows, Cost: m.probeCost(l, r, 1)}, nil
	case *algebra.SemiJoin:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: l.Rows * joinKeyShare, Cost: m.probeCost(l, r, 1)}, nil
	case *algebra.ComplementJoin:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: l.Rows * (1 - joinKeyShare), Cost: m.probeCost(l, r, 1)}, nil
	case *algebra.OuterJoin:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		rows := math.Max(l.Rows, joinRows(l.Rows, r.Rows, len(n.On)))
		return Estimate{Rows: rows, Cost: m.probeCost(l, r, 1)}, nil
	case *algebra.ConstrainedOuterJoin:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		// Left-preserving: one output row per left row; each constraint
		// halves the share of tuples actually probed.
		probeShare := math.Pow(0.5, float64(len(n.Constraint)))
		return Estimate{Rows: l.Rows, Cost: m.probeCost(l, r, probeShare)}, nil
	case *algebra.Union:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: (l.Rows + r.Rows) * 0.9, Cost: l.Cost + r.Cost + l.Rows + r.Rows}, nil
	case *algebra.Diff:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: l.Rows * (1 - joinKeyShare), Cost: m.probeCost(l, r, 1)}, nil
	case *algebra.Intersect:
		l, r, err := m.pair(n.Left, n.Right, seen)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: math.Min(l.Rows, r.Rows) * joinKeyShare, Cost: m.probeCost(l, r, 1)}, nil
	case *algebra.Division:
		l, r, err := m.pair(n.Dividend, n.Divisor, seen)
		if err != nil {
			return Estimate{}, err
		}
		groups := math.Max(1, l.Rows/math.Max(1, r.Rows))
		return Estimate{
			Rows: groups * joinKeyShare,
			Cost: l.Cost + r.Cost + l.Rows + r.Rows + groups*r.Rows,
		}, nil
	case *algebra.GroupCount:
		in, err := m.est(n.Input, seen)
		if err != nil {
			return Estimate{}, err
		}
		groups := math.Min(in.Rows, math.Pow(in.Rows, 0.75)+1)
		if len(n.GroupCols) == 0 {
			groups = 1
		}
		return Estimate{Rows: groups, Cost: in.Cost + in.Rows}, nil
	case *algebra.Materialize:
		in, err := m.est(n.Input, seen)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Rows: in.Rows, Cost: in.Cost + in.Rows}, nil
	case *algebra.Shared:
		in, err := m.est(n.Input, seen)
		if err != nil {
			return Estimate{}, err
		}
		if seen[n.FP] {
			// Replay: the subtree ran earlier in this plan; only the
			// spooled rows are streamed back out.
			return Estimate{Rows: in.Rows, Cost: in.Rows}, nil
		}
		seen[n.FP] = true
		// First occurrence: full subtree cost plus one spooling pass.
		return Estimate{Rows: in.Rows, Cost: in.Cost + in.Rows}, nil
	default:
		return Estimate{}, fmt.Errorf("cost: unknown plan node %T", p)
	}
}

// EstimateBool estimates a boolean plan: emptiness tests are credited with
// early termination (a fraction of the full input cost), connectives sum
// with short-circuit discounting.
func (m *Model) EstimateBool(p algebra.BoolPlan) (Estimate, error) {
	return m.estBool(p, make(map[uint64]bool))
}

func (m *Model) estBool(p algebra.BoolPlan, seen map[uint64]bool) (Estimate, error) {
	switch n := p.(type) {
	case *algebra.NotEmpty, *algebra.IsEmpty:
		var input algebra.Plan
		if ne, ok := n.(*algebra.NotEmpty); ok {
			input = ne.Input
		} else {
			input = n.(*algebra.IsEmpty).Input
		}
		in, err := m.est(input, seen)
		if err != nil {
			return Estimate{}, err
		}
		// Blocking operators still pay their build cost; the streaming
		// share stops at the first tuple. Credit one third.
		return Estimate{Rows: 1, Cost: in.Cost / 3}, nil
	case *algebra.BoolAnd:
		return m.boolSeq(n.Inputs, seen)
	case *algebra.BoolOr:
		return m.boolSeq(n.Inputs, seen)
	case *algebra.BoolNot:
		return m.estBool(n.Input, seen)
	case *algebra.BoolConst:
		return Estimate{Rows: 1, Cost: 0}, nil
	default:
		return Estimate{}, fmt.Errorf("cost: unknown boolean plan node %T", p)
	}
}

// boolSeq sums children with a geometric short-circuit discount.
func (m *Model) boolSeq(inputs []algebra.BoolPlan, seen map[uint64]bool) (Estimate, error) {
	total := Estimate{Rows: 1}
	weight := 1.0
	for _, c := range inputs {
		e, err := m.estBool(c, seen)
		if err != nil {
			return Estimate{}, err
		}
		total.Cost += e.Cost * weight
		weight *= 0.5
	}
	return total, nil
}

func (m *Model) pair(l, r algebra.Plan, seen map[uint64]bool) (Estimate, Estimate, error) {
	le, err := m.est(l, seen)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	re, err := m.est(r, seen)
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	return le, re, nil
}

// probeCost is the shared schema of the join family: read both inputs,
// build on the right, probe once per left tuple (probeShare scales the
// probed fraction, for the constrained outer-join's gate). Under a
// partition fan-out the build+probe work divides across partitions after a
// sequential scatter pass over both inputs.
func (m *Model) probeCost(l, r Estimate, probeShare float64) float64 {
	build, probe := r.Rows, l.Rows*probeShare
	// Iteration bookkeeping: per tuple under the tuple executor (batch=1),
	// per block — i.e. divided by the block capacity — under the batch one.
	keeping := (build + probe) * blockOverhead / m.batch
	if m.parallelism > 1 {
		scatter := (l.Rows + r.Rows) * partitionShare
		return l.Cost + r.Cost + scatter + (build+probe)/m.parallelism + keeping
	}
	return l.Cost + r.Cost + build + probe + keeping
}

// joinRows estimates equi-join output with the standard V(distinct)
// denominator, approximated by the larger input when no exact count is
// available.
func joinRows(l, r float64, keys int) float64 {
	if keys == 0 {
		return l * r
	}
	return l * r / math.Max(1, math.Max(l, r))
}

// selectivity estimates a predicate's pass rate; when the input is a base
// scan, equality against a constant uses the column's exact distinct count.
func (m *Model) selectivity(p algebra.Pred, input algebra.Plan) float64 {
	switch n := p.(type) {
	case algebra.True:
		return 1
	case algebra.CmpConst:
		if n.Op == relation.OpEq {
			if sc, ok := input.(*algebra.Scan); ok {
				if d := m.distinctOf(sc.Name, n.Col); d > 0 {
					return 1 / d
				}
			}
			return selEq
		}
		if n.Op == relation.OpNe {
			return 1 - selEq
		}
		return selRange
	case algebra.CmpCols:
		if n.Op == relation.OpEq {
			return selEq
		}
		if n.Op == relation.OpNe {
			return 1 - selEq
		}
		return selRange
	case algebra.IsNull:
		return selNull
	case algebra.NotNull:
		return 1 - selNull
	case algebra.And:
		out := 1.0
		for _, q := range n.Preds {
			out *= m.selectivity(q, input)
		}
		return out
	case algebra.Or:
		miss := 1.0
		for _, q := range n.Preds {
			miss *= 1 - m.selectivity(q, input)
		}
		return 1 - miss
	case algebra.Not:
		return 1 - m.selectivity(n.Pred, input)
	default:
		return selRange
	}
}

// distinctOf computes (and caches) the exact distinct count of one column
// of a base relation.
func (m *Model) distinctOf(name string, col int) float64 {
	ds, ok := m.distinct[name]
	if !ok {
		r, err := m.cat.Relation(name)
		if err != nil {
			return 0
		}
		ds = make([]float64, r.Arity())
		for c := 0; c < r.Arity(); c++ {
			seen := make(map[string]struct{})
			for _, t := range r.Tuples() {
				seen[t.Project([]int{c}).Key()] = struct{}{}
			}
			ds[c] = float64(len(seen))
		}
		m.distinct[name] = ds
	}
	if col < 0 || col >= len(ds) {
		return 0
	}
	return ds[col]
}

// Explain renders the plan tree annotated with per-node estimates.
func (m *Model) Explain(p algebra.Plan) (string, error) {
	var b strings.Builder
	if err := m.explain(&b, p, 0); err != nil {
		return "", err
	}
	return b.String(), nil
}

func (m *Model) explain(b *strings.Builder, p algebra.Plan, depth int) error {
	e, err := m.Estimate(p)
	if err != nil {
		return err
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s  (rows≈%.0f cost≈%.0f)\n", p.Describe(), e.Rows, e.Cost)
	for _, c := range p.Children() {
		if err := m.explain(b, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
