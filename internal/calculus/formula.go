// Package calculus implements the domain relational calculus of the paper:
// relation atoms over domain variables and constants, comparison atoms,
// the connectives ¬ ∧ ∨ ⇒ and the quantifiers ∃ ∀ (with the paper's
// multi-variable shorthand ∃x₁…xₙ). It provides the logical machinery the
// normalization and translation phases rely on: free variables, polarity,
// capture-free substitution, α-equivalence and the governing relationship
// between quantified variables (§1, Definitions and Notations).
package calculus

import (
	"fmt"

	"repro/internal/relation"
)

// Term is a variable or a constant argument of an atom.
type Term struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the constant value; meaningful only when Var is empty.
	Const relation.Value
}

// V builds a variable term.
func V(name string) Term { return Term{Var: name} }

// C builds a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// CInt builds an integer constant term.
func CInt(i int64) Term { return C(relation.Int(i)) }

// CStr builds a string constant term.
func CStr(s string) Term { return C(relation.Str(s)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// Equal reports structural equality of terms.
func (t Term) Equal(u Term) bool {
	if t.IsVar() != u.IsVar() {
		return false
	}
	if t.IsVar() {
		return t.Var == u.Var
	}
	return t.Const.Equal(u.Const)
}

// String renders the term; string constants are quoted to distinguish them
// from variables.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Const.Kind() == relation.KindString {
		return fmt.Sprintf("%q", t.Const.AsString())
	}
	return t.Const.String()
}

// Formula is a relational calculus formula. The concrete types are Atom,
// Cmp, Not, And, Or, Implies, Exists and Forall. Formulas are treated as
// immutable: every transformation builds new nodes.
type Formula interface {
	isFormula()
	// String renders the formula in the paper's notation.
	String() string
}

// Atom is a relation atom R(t₁,…,tₙ).
type Atom struct {
	Pred string
	Args []Term
}

// Cmp is a comparison atom t₁ op t₂, e.g. y ≠ "cs".
type Cmp struct {
	Left  Term
	Op    relation.CmpOp
	Right Term
}

// Not is negation ¬F.
type Not struct{ F Formula }

// And is binary conjunction F₁ ∧ F₂.
type And struct{ L, R Formula }

// Or is binary disjunction F₁ ∨ F₂.
type Or struct{ L, R Formula }

// Implies is implication F₁ ⇒ F₂. Following the paper, it is used only to
// attach a range to a universal quantifier (∀x̄ R ⇒ F); general implications
// are written out as ¬F₁ ∨ F₂ by the parser.
type Implies struct{ L, R Formula }

// Exists is the multi-variable existential quantification ∃x₁…xₙ F.
type Exists struct {
	Vars []string
	Body Formula
}

// Forall is the multi-variable universal quantification ∀x₁…xₙ F.
type Forall struct {
	Vars []string
	Body Formula
}

func (Atom) isFormula()    {}
func (Cmp) isFormula()     {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Implies) isFormula() {}
func (Exists) isFormula()  {}
func (Forall) isFormula()  {}

// Convenience constructors keep translation and test code readable.

// NewAtom builds a relation atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// AndAll folds a conjunction left-associatively; it panics on no arguments.
func AndAll(fs ...Formula) Formula {
	if len(fs) == 0 {
		panic("calculus: empty conjunction")
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = And{L: out, R: f}
	}
	return out
}

// OrAll folds a disjunction left-associatively; it panics on no arguments.
func OrAll(fs ...Formula) Formula {
	if len(fs) == 0 {
		panic("calculus: empty disjunction")
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = Or{L: out, R: f}
	}
	return out
}

// Conjuncts flattens nested conjunctions into a list, left to right.
func Conjuncts(f Formula) []Formula {
	if a, ok := f.(And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Formula{f}
}

// Disjuncts flattens nested disjunctions into a list, left to right.
func Disjuncts(f Formula) []Formula {
	if o, ok := f.(Or); ok {
		return append(Disjuncts(o.L), Disjuncts(o.R)...)
	}
	return []Formula{f}
}
