package calculus

import (
	"fmt"
	"sort"
)

// VarSet is a set of variable names.
type VarSet map[string]struct{}

// NewVarSet builds a set from names.
func NewVarSet(names ...string) VarSet {
	s := make(VarSet, len(names))
	for _, n := range names {
		s[n] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s VarSet) Has(name string) bool {
	_, ok := s[name]
	return ok
}

// Add inserts a name.
func (s VarSet) Add(name string) { s[name] = struct{}{} }

// AddAll inserts every name of another set.
func (s VarSet) AddAll(o VarSet) {
	for n := range o {
		s[n] = struct{}{}
	}
}

// Sorted returns the members in lexicographic order.
func (s VarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Equal reports set equality.
func (s VarSet) Equal(o VarSet) bool {
	if len(s) != len(o) {
		return false
	}
	for n := range s {
		if !o.Has(n) {
			return false
		}
	}
	return true
}

// ContainsAll reports whether s ⊇ o.
func (s VarSet) ContainsAll(o VarSet) bool {
	for n := range o {
		if !s.Has(n) {
			return false
		}
	}
	return true
}

// Intersects reports whether the sets share a member.
func (s VarSet) Intersects(o VarSet) bool {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	for n := range small {
		if big.Has(n) {
			return true
		}
	}
	return false
}

// FreeVars returns the free variables of a formula.
func FreeVars(f Formula) VarSet {
	out := make(VarSet)
	collectFree(f, make(VarSet), out)
	return out
}

func collectFree(f Formula, bound, out VarSet) {
	switch n := f.(type) {
	case Atom:
		for _, t := range n.Args {
			if t.IsVar() && !bound.Has(t.Var) {
				out.Add(t.Var)
			}
		}
	case Cmp:
		for _, t := range []Term{n.Left, n.Right} {
			if t.IsVar() && !bound.Has(t.Var) {
				out.Add(t.Var)
			}
		}
	case Not:
		collectFree(n.F, bound, out)
	case And:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case Or:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case Implies:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case Exists:
		collectFree(n.Body, withBound(bound, n.Vars), out)
	case Forall:
		collectFree(n.Body, withBound(bound, n.Vars), out)
	default:
		panic(fmt.Sprintf("calculus: unknown formula %T", f))
	}
}

func withBound(bound VarSet, vars []string) VarSet {
	nb := make(VarSet, len(bound)+len(vars))
	nb.AddAll(bound)
	for _, v := range vars {
		nb.Add(v)
	}
	return nb
}

// AllVars returns every variable name occurring in the formula, free or
// bound (including quantified variables with no occurrence).
func AllVars(f Formula) VarSet {
	out := make(VarSet)
	walk(f, func(g Formula) {
		switch n := g.(type) {
		case Atom:
			for _, t := range n.Args {
				if t.IsVar() {
					out.Add(t.Var)
				}
			}
		case Cmp:
			for _, t := range []Term{n.Left, n.Right} {
				if t.IsVar() {
					out.Add(t.Var)
				}
			}
		case Exists:
			for _, v := range n.Vars {
				out.Add(v)
			}
		case Forall:
			for _, v := range n.Vars {
				out.Add(v)
			}
		}
	})
	return out
}

// walk visits every subformula in preorder.
func walk(f Formula, visit func(Formula)) {
	visit(f)
	switch n := f.(type) {
	case Not:
		walk(n.F, visit)
	case And:
		walk(n.L, visit)
		walk(n.R, visit)
	case Or:
		walk(n.L, visit)
		walk(n.R, visit)
	case Implies:
		walk(n.L, visit)
		walk(n.R, visit)
	case Exists:
		walk(n.Body, visit)
	case Forall:
		walk(n.Body, visit)
	}
}

// Walk exposes the preorder traversal to other packages.
func Walk(f Formula, visit func(Formula)) { walk(f, visit) }

// Subst applies a substitution of terms for FREE variables. Bound variables
// shadow the substitution. The caller must ensure no capture can occur
// (the rewrite engine standardizes bound variables apart first).
func Subst(f Formula, sub map[string]Term) Formula {
	if len(sub) == 0 {
		return f
	}
	switch n := f.(type) {
	case Atom:
		args := make([]Term, len(n.Args))
		for i, t := range n.Args {
			args[i] = substTerm(t, sub)
		}
		return Atom{Pred: n.Pred, Args: args}
	case Cmp:
		return Cmp{Left: substTerm(n.Left, sub), Op: n.Op, Right: substTerm(n.Right, sub)}
	case Not:
		return Not{F: Subst(n.F, sub)}
	case And:
		return And{L: Subst(n.L, sub), R: Subst(n.R, sub)}
	case Or:
		return Or{L: Subst(n.L, sub), R: Subst(n.R, sub)}
	case Implies:
		return Implies{L: Subst(n.L, sub), R: Subst(n.R, sub)}
	case Exists:
		return Exists{Vars: n.Vars, Body: Subst(n.Body, shadow(sub, n.Vars))}
	case Forall:
		return Forall{Vars: n.Vars, Body: Subst(n.Body, shadow(sub, n.Vars))}
	default:
		panic(fmt.Sprintf("calculus: unknown formula %T", f))
	}
}

func substTerm(t Term, sub map[string]Term) Term {
	if t.IsVar() {
		if r, ok := sub[t.Var]; ok {
			return r
		}
	}
	return t
}

func shadow(sub map[string]Term, vars []string) map[string]Term {
	shadowed := false
	for _, v := range vars {
		if _, ok := sub[v]; ok {
			shadowed = true
			break
		}
	}
	if !shadowed {
		return sub
	}
	ns := make(map[string]Term, len(sub))
	for k, t := range sub {
		ns[k] = t
	}
	for _, v := range vars {
		delete(ns, v)
	}
	return ns
}

// Equal reports structural equality of formulas (variable names included).
func Equal(f, g Formula) bool {
	switch a := f.(type) {
	case Atom:
		b, ok := g.(Atom)
		if !ok || a.Pred != b.Pred || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !a.Args[i].Equal(b.Args[i]) {
				return false
			}
		}
		return true
	case Cmp:
		b, ok := g.(Cmp)
		return ok && a.Op == b.Op && a.Left.Equal(b.Left) && a.Right.Equal(b.Right)
	case Not:
		b, ok := g.(Not)
		return ok && Equal(a.F, b.F)
	case And:
		b, ok := g.(And)
		return ok && Equal(a.L, b.L) && Equal(a.R, b.R)
	case Or:
		b, ok := g.(Or)
		return ok && Equal(a.L, b.L) && Equal(a.R, b.R)
	case Implies:
		b, ok := g.(Implies)
		return ok && Equal(a.L, b.L) && Equal(a.R, b.R)
	case Exists:
		b, ok := g.(Exists)
		return ok && sameVars(a.Vars, b.Vars) && Equal(a.Body, b.Body)
	case Forall:
		b, ok := g.(Forall)
		return ok && sameVars(a.Vars, b.Vars) && Equal(a.Body, b.Body)
	default:
		panic(fmt.Sprintf("calculus: unknown formula %T", f))
	}
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RenameBound renames every bound variable to a fresh name drawn from gen,
// leaving free variables untouched. The result has all-distinct bound
// variables ("standardized apart"), the precondition for the rewrite rules
// that duplicate subformulas.
func RenameBound(f Formula, gen *NameGen) Formula {
	return renameBound(f, nil, gen)
}

func renameBound(f Formula, ren map[string]string, gen *NameGen) Formula {
	switch n := f.(type) {
	case Atom:
		args := make([]Term, len(n.Args))
		for i, t := range n.Args {
			args[i] = renameTerm(t, ren)
		}
		return Atom{Pred: n.Pred, Args: args}
	case Cmp:
		return Cmp{Left: renameTerm(n.Left, ren), Op: n.Op, Right: renameTerm(n.Right, ren)}
	case Not:
		return Not{F: renameBound(n.F, ren, gen)}
	case And:
		return And{L: renameBound(n.L, ren, gen), R: renameBound(n.R, ren, gen)}
	case Or:
		return Or{L: renameBound(n.L, ren, gen), R: renameBound(n.R, ren, gen)}
	case Implies:
		return Implies{L: renameBound(n.L, ren, gen), R: renameBound(n.R, ren, gen)}
	case Exists:
		vars, nr := freshVars(n.Vars, ren, gen)
		return Exists{Vars: vars, Body: renameBound(n.Body, nr, gen)}
	case Forall:
		vars, nr := freshVars(n.Vars, ren, gen)
		return Forall{Vars: vars, Body: renameBound(n.Body, nr, gen)}
	default:
		panic(fmt.Sprintf("calculus: unknown formula %T", f))
	}
}

func renameTerm(t Term, ren map[string]string) Term {
	if t.IsVar() {
		if r, ok := ren[t.Var]; ok {
			return V(r)
		}
	}
	return t
}

func freshVars(vars []string, ren map[string]string, gen *NameGen) ([]string, map[string]string) {
	nr := make(map[string]string, len(ren)+len(vars))
	for k, v := range ren {
		nr[k] = v
	}
	out := make([]string, len(vars))
	for i, v := range vars {
		f := gen.Fresh(v)
		out[i] = f
		nr[v] = f
	}
	return out, nr
}

// NameGen generates fresh variable names derived from a base name, as in
// the paper's F₂ → F₃ step (x duplicated into x₁, x₂).
type NameGen struct {
	used VarSet
	next int
}

// NewNameGen builds a generator that avoids every name in used.
func NewNameGen(used VarSet) *NameGen {
	u := make(VarSet, len(used))
	u.AddAll(used)
	return &NameGen{used: u}
}

// Fresh returns an unused name derived from base and reserves it.
func (g *NameGen) Fresh(base string) string {
	for {
		g.next++
		name := fmt.Sprintf("%s_%d", base, g.next)
		if !g.used.Has(name) {
			g.used.Add(name)
			return name
		}
	}
}

// AlphaEqual reports logical-syntax equality up to renaming of bound
// variables. The rewrite-system confluence tests compare normal forms with
// it, since different rule orders may pick different fresh names.
func AlphaEqual(f, g Formula) bool { return alphaEq(f, g, nil, nil) }

func alphaEq(f, g Formula, fm, gm map[string]int) bool {
	switch a := f.(type) {
	case Atom:
		b, ok := g.(Atom)
		if !ok || a.Pred != b.Pred || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !alphaTermEq(a.Args[i], b.Args[i], fm, gm) {
				return false
			}
		}
		return true
	case Cmp:
		b, ok := g.(Cmp)
		return ok && a.Op == b.Op && alphaTermEq(a.Left, b.Left, fm, gm) && alphaTermEq(a.Right, b.Right, fm, gm)
	case Not:
		b, ok := g.(Not)
		return ok && alphaEq(a.F, b.F, fm, gm)
	case And:
		b, ok := g.(And)
		return ok && alphaEq(a.L, b.L, fm, gm) && alphaEq(a.R, b.R, fm, gm)
	case Or:
		b, ok := g.(Or)
		return ok && alphaEq(a.L, b.L, fm, gm) && alphaEq(a.R, b.R, fm, gm)
	case Implies:
		b, ok := g.(Implies)
		return ok && alphaEq(a.L, b.L, fm, gm) && alphaEq(a.R, b.R, fm, gm)
	case Exists:
		b, ok := g.(Exists)
		if !ok || len(a.Vars) != len(b.Vars) {
			return false
		}
		nfm, ngm := bindAlpha(a.Vars, b.Vars, fm, gm)
		return alphaEq(a.Body, b.Body, nfm, ngm)
	case Forall:
		b, ok := g.(Forall)
		if !ok || len(a.Vars) != len(b.Vars) {
			return false
		}
		nfm, ngm := bindAlpha(a.Vars, b.Vars, fm, gm)
		return alphaEq(a.Body, b.Body, nfm, ngm)
	default:
		panic(fmt.Sprintf("calculus: unknown formula %T", f))
	}
}

func alphaTermEq(a, b Term, fm, gm map[string]int) bool {
	if a.IsVar() != b.IsVar() {
		return false
	}
	if !a.IsVar() {
		return a.Const.Equal(b.Const)
	}
	ai, aBound := fm[a.Var]
	bi, bBound := gm[b.Var]
	if aBound != bBound {
		return false
	}
	if aBound {
		return ai == bi
	}
	return a.Var == b.Var
}

func bindAlpha(av, bv []string, fm, gm map[string]int) (map[string]int, map[string]int) {
	base := 0
	for _, i := range fm {
		if i >= base {
			base = i + 1
		}
	}
	nfm := make(map[string]int, len(fm)+len(av))
	for k, v := range fm {
		nfm[k] = v
	}
	ngm := make(map[string]int, len(gm)+len(bv))
	for k, v := range gm {
		ngm[k] = v
	}
	for i := range av {
		nfm[av[i]] = base + i
		ngm[bv[i]] = base + i
	}
	return nfm, ngm
}
