package calculus

import "testing"

func TestAtomPolarity(t *testing.T) {
	// ∀y lecture(y) ⇒ attends(x,y): lecture is the implication's left side
	// (implicitly negated), attends positive.
	f := Forall{Vars: []string{"y"}, Body: Implies{
		L: NewAtom("lecture", V("y")),
		R: NewAtom("attends", V("x"), V("y")),
	}}
	if got := AtomPolarity(f, "lecture"); got != Negative {
		t.Errorf("lecture polarity = %s, want negative", got)
	}
	if got := AtomPolarity(f, "attends"); got != Positive {
		t.Errorf("attends polarity = %s, want positive", got)
	}
	if got := AtomPolarity(f, "absent"); got != 0 {
		t.Errorf("absent polarity = %s, want none", got)
	}
}

func TestPolarityDoubleNegation(t *testing.T) {
	f := Not{F: Not{F: NewAtom("p")}}
	if got := AtomPolarity(f, "p"); got != Positive {
		t.Errorf("¬¬p: p polarity = %s, want positive", got)
	}
	g := Not{F: Not{F: Not{F: NewAtom("p")}}}
	if got := AtomPolarity(g, "p"); got != Negative {
		t.Errorf("¬¬¬p: p polarity = %s, want negative", got)
	}
}

func TestPolarityNestedImplication(t *testing.T) {
	// (p ⇒ q) ⇒ r: p positive (two implicit negations), q negative, r positive.
	f := Implies{L: Implies{L: NewAtom("p"), R: NewAtom("q")}, R: NewAtom("r")}
	if got := AtomPolarity(f, "p"); got != Positive {
		t.Errorf("p = %s, want positive", got)
	}
	if got := AtomPolarity(f, "q"); got != Negative {
		t.Errorf("q = %s, want negative", got)
	}
	if got := AtomPolarity(f, "r"); got != Positive {
		t.Errorf("r = %s, want positive", got)
	}
}

func TestPolarityBoth(t *testing.T) {
	f := And{L: NewAtom("p"), R: Not{F: NewAtom("p")}}
	if got := AtomPolarity(f, "p"); got != Both {
		t.Errorf("p ∧ ¬p: p polarity = %s, want both", got)
	}
	if Both.String() != "both" || Positive.String() != "positive" || Negative.String() != "negative" {
		t.Error("String labels broken")
	}
}

func TestPolarityUnderQuantifiers(t *testing.T) {
	f := Exists{Vars: []string{"x"}, Body: Not{F: Forall{Vars: []string{"y"}, Body: NewAtom("r", V("x"), V("y"))}}}
	if got := AtomPolarity(f, "r"); got != Negative {
		t.Errorf("r polarity = %s, want negative (quantifiers preserve polarity)", got)
	}
}
