package calculus

import (
	"testing"

	"repro/internal/relation"
)

func TestTermEqual(t *testing.T) {
	cases := []struct {
		a, b Term
		want bool
	}{
		{V("x"), V("x"), true},
		{V("x"), V("y"), false},
		{CStr("a"), CStr("a"), true},
		{CStr("a"), CStr("b"), false},
		{CInt(1), CInt(1), true},
		{CInt(1), CStr("1"), false},
		{V("x"), CStr("x"), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFreeVars(t *testing.T) {
	// ∃y p(x,y) ∧ q(z): free = {x, z}
	f := And{
		L: Exists{Vars: []string{"y"}, Body: NewAtom("p", V("x"), V("y"))},
		R: NewAtom("q", V("z")),
	}
	fv := FreeVars(f)
	if !fv.Equal(NewVarSet("x", "z")) {
		t.Fatalf("FreeVars = %v, want {x z}", fv.Sorted())
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// p(x) ∧ ∃x q(x): free = {x} (the first occurrence only)
	f := And{
		L: NewAtom("p", V("x")),
		R: Exists{Vars: []string{"x"}, Body: NewAtom("q", V("x"))},
	}
	fv := FreeVars(f)
	if !fv.Equal(NewVarSet("x")) {
		t.Fatalf("FreeVars = %v, want {x}", fv.Sorted())
	}
}

func TestFreeVarsCmp(t *testing.T) {
	f := Cmp{Left: V("y"), Op: relation.OpNe, Right: CStr("cs")}
	if fv := FreeVars(f); !fv.Equal(NewVarSet("y")) {
		t.Fatalf("FreeVars = %v, want {y}", fv.Sorted())
	}
}

func TestSubst(t *testing.T) {
	// p(x,y)[x := "a"] = p("a",y)
	f := NewAtom("p", V("x"), V("y"))
	g := Subst(f, map[string]Term{"x": CStr("a")})
	want := NewAtom("p", CStr("a"), V("y"))
	if !Equal(g, want) {
		t.Fatalf("Subst = %s, want %s", g, want)
	}
}

func TestSubstShadowed(t *testing.T) {
	// (∃x p(x,y))[x := a] leaves the bound x alone, rewrites nothing else.
	f := Exists{Vars: []string{"x"}, Body: NewAtom("p", V("x"), V("y"))}
	g := Subst(f, map[string]Term{"x": CStr("a"), "y": CStr("b")})
	want := Exists{Vars: []string{"x"}, Body: NewAtom("p", V("x"), CStr("b"))}
	if !Equal(g, want) {
		t.Fatalf("Subst = %s, want %s", g, want)
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	a, b, c := NewAtom("a"), NewAtom("b"), NewAtom("c")
	f := AndAll(a, b, c)
	if got := Conjuncts(f); len(got) != 3 {
		t.Fatalf("Conjuncts len = %d, want 3", len(got))
	}
	g := OrAll(a, b, c)
	if got := Disjuncts(g); len(got) != 3 {
		t.Fatalf("Disjuncts len = %d, want 3", len(got))
	}
	if got := Conjuncts(a); len(got) != 1 {
		t.Fatalf("Conjuncts(atom) len = %d, want 1", len(got))
	}
}

func TestRenameBoundStandardizesApart(t *testing.T) {
	// ∃x p(x) ∧ ∃x q(x): both bound x's get distinct fresh names.
	f := And{
		L: Exists{Vars: []string{"x"}, Body: NewAtom("p", V("x"))},
		R: Exists{Vars: []string{"x"}, Body: NewAtom("q", V("x"))},
	}
	gen := NewNameGen(AllVars(f))
	g := RenameBound(f, gen)
	and := g.(And)
	lx := and.L.(Exists).Vars[0]
	rx := and.R.(Exists).Vars[0]
	if lx == rx {
		t.Fatalf("bound variables not standardized apart: both %q", lx)
	}
	if !AlphaEqual(f, g) {
		t.Fatalf("RenameBound broke alpha-equivalence: %s vs %s", f, g)
	}
}

func TestAlphaEqual(t *testing.T) {
	f := Exists{Vars: []string{"x"}, Body: NewAtom("p", V("x"), V("free"))}
	g := Exists{Vars: []string{"y"}, Body: NewAtom("p", V("y"), V("free"))}
	h := Exists{Vars: []string{"y"}, Body: NewAtom("p", V("y"), V("other"))}
	if !AlphaEqual(f, g) {
		t.Errorf("AlphaEqual(%s, %s) = false, want true", f, g)
	}
	if AlphaEqual(f, h) {
		t.Errorf("AlphaEqual(%s, %s) = true, want false (different free var)", f, h)
	}
	// Free variables must match by name.
	i := NewAtom("p", V("a"))
	j := NewAtom("p", V("b"))
	if AlphaEqual(i, j) {
		t.Errorf("AlphaEqual over distinct free vars must be false")
	}
}

func TestAlphaEqualNestedSameName(t *testing.T) {
	// ∃x (p(x) ∧ ∃x q(x)) ≡α ∃a (p(a) ∧ ∃b q(b))
	f := Exists{Vars: []string{"x"}, Body: And{
		L: NewAtom("p", V("x")),
		R: Exists{Vars: []string{"x"}, Body: NewAtom("q", V("x"))},
	}}
	g := Exists{Vars: []string{"a"}, Body: And{
		L: NewAtom("p", V("a")),
		R: Exists{Vars: []string{"b"}, Body: NewAtom("q", V("b"))},
	}}
	if !AlphaEqual(f, g) {
		t.Fatalf("AlphaEqual(%s, %s) = false, want true", f, g)
	}
}

// TestGovernsPaperExample reproduces the governing example from §1:
//
//	∃x {student(x) ∧ [∀y lecture(y,db) ⇒ attends(x,y)]
//	     ∧ [∀z1 student(z1) ⇒ ∃z2 attends(z1,z2)]}
//
// x governs y but none of the z's; z1 governs z2.
func TestGovernsPaperExample(t *testing.T) {
	f := Exists{Vars: []string{"x"}, Body: AndAll(
		NewAtom("student", V("x")),
		Forall{Vars: []string{"y"}, Body: Implies{
			L: NewAtom("lecture", V("y"), CStr("db")),
			R: NewAtom("attends", V("x"), V("y")),
		}},
		Forall{Vars: []string{"z1"}, Body: Implies{
			L: NewAtom("student", V("z1")),
			R: Exists{Vars: []string{"z2"}, Body: NewAtom("attends", V("z1"), V("z2"))},
		}},
	)}
	gov := Governs(f)
	if !gov["x"].Has("y") {
		t.Errorf("x must govern y")
	}
	if gov["x"].Has("z1") || gov["x"].Has("z2") {
		t.Errorf("x must not govern z1 or z2; governs[x] = %v", gov["x"].Sorted())
	}
	if !gov["z1"].Has("z2") {
		t.Errorf("z1 must govern z2")
	}
}

// TestGovernsMiniscopeGuard checks the F5 example of §2.2:
// ∃x p(x) ∧ [∀y ¬q(y) ∨ r(x,y)] — x governs y, so q(y) may not move out.
func TestGovernsMiniscopeGuard(t *testing.T) {
	f := Exists{Vars: []string{"x"}, Body: And{
		L: NewAtom("p", V("x")),
		R: Forall{Vars: []string{"y"}, Body: Or{
			L: Not{F: NewAtom("q", V("y"))},
			R: NewAtom("r", V("x"), V("y")),
		}},
	}}
	gov := Governs(f)
	if !gov["x"].Has("y") {
		t.Fatalf("x must govern y in %s; governs = %v", f, gov)
	}
}

// TestGovernsSameQuantifier: same-kind nesting never governs (condition 4).
func TestGovernsSameQuantifier(t *testing.T) {
	f := Exists{Vars: []string{"x"}, Body: Exists{Vars: []string{"y"}, Body: NewAtom("p", V("x"), V("y"))}}
	gov := Governs(f)
	if gov["x"].Has("y") {
		t.Fatalf("∃-∃ nesting must not govern")
	}
}

// TestGovernsNotImmediate: condition 2 — a doubly-nested quantifier is not
// directly governed, and without a connecting atom no transitive edge exists.
func TestGovernsNotImmediate(t *testing.T) {
	// ∃x p(x) ∧ ∀y (q(y) ⇒ ∃z r(y,z)): x does not govern z (no atom links
	// x to y or z), and y governs z.
	f := Exists{Vars: []string{"x"}, Body: And{
		L: NewAtom("p", V("x")),
		R: Forall{Vars: []string{"y"}, Body: Implies{
			L: NewAtom("q", V("y")),
			R: Exists{Vars: []string{"z"}, Body: NewAtom("r", V("y"), V("z"))},
		}},
	}}
	gov := Governs(f)
	if gov["x"].Has("z") || gov["x"].Has("y") {
		t.Errorf("x must govern nothing here; governs[x] = %v", gov["x"].Sorted())
	}
	if !gov["y"].Has("z") {
		t.Errorf("y must govern z")
	}
}

// TestGovernsTransitive: x governs y via an atom mentioning a variable
// governed by y (condition 3's recursive branch) and transitivity.
func TestGovernsTransitive(t *testing.T) {
	// ∃x p(x) ∧ ∀y (q(y) ⇒ ∃z r(x,z) ∧ s(y,z))
	// z: quantified in scope of y, distinct quantifier, atom s(y,z) → y governs z.
	// y: x's scope contains atom r(x,z) with z governed by y → x governs y,
	// and transitively x governs z.
	f := Exists{Vars: []string{"x"}, Body: And{
		L: NewAtom("p", V("x")),
		R: Forall{Vars: []string{"y"}, Body: Implies{
			L: NewAtom("q", V("y")),
			R: Exists{Vars: []string{"z"}, Body: And{
				L: NewAtom("r", V("x"), V("z")),
				R: NewAtom("s", V("y"), V("z")),
			}},
		}},
	}}
	gov := Governs(f)
	if !gov["y"].Has("z") {
		t.Fatalf("y must govern z")
	}
	if !gov["x"].Has("y") {
		t.Fatalf("x must govern y (via z governed by y)")
	}
	if !gov["x"].Has("z") {
		t.Fatalf("x must govern z transitively")
	}
}

func TestVarSetOps(t *testing.T) {
	s := NewVarSet("a", "b")
	o := NewVarSet("b", "c")
	if !s.Intersects(o) {
		t.Error("sets share b")
	}
	if s.ContainsAll(o) {
		t.Error("s does not contain c")
	}
	if !s.ContainsAll(NewVarSet("a")) {
		t.Error("s contains a")
	}
	if s.Equal(o) {
		t.Error("distinct sets reported equal")
	}
	got := s.Sorted()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Sorted = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	f := Exists{Vars: []string{"x", "y"}, Body: And{
		L: NewAtom("p", V("x"), CStr("cs")),
		R: Not{F: NewAtom("q", V("y"))},
	}}
	want := `∃x,y (p(x,"cs") ∧ ¬q(y))`
	if got := f.String(); got != want {
		t.Fatalf("String = %s, want %s", got, want)
	}
}

// TestGovernsMultiVariableBlocks: governing across multi-variable blocks —
// every variable of an outer ∃-block can govern every inner ∀-variable it
// shares an atom with, and block-mates never govern each other.
func TestGovernsMultiVariableBlocks(t *testing.T) {
	// ∃x,y (r(x,y) ∧ ∀z (s(y,z) ⇒ t(x,z)))
	f := Exists{Vars: []string{"x", "y"}, Body: And{
		L: NewAtom("r", V("x"), V("y")),
		R: Forall{Vars: []string{"z"}, Body: Implies{
			L: NewAtom("s", V("y"), V("z")),
			R: NewAtom("t", V("x"), V("z")),
		}},
	}}
	gov := Governs(f)
	if !gov["x"].Has("z") || !gov["y"].Has("z") {
		t.Fatalf("both x and y must govern z: %v", gov)
	}
	if gov["x"].Has("y") || gov["y"].Has("x") {
		t.Fatal("block-mates must not govern each other (same quantifier)")
	}
}
