package calculus

import (
	"fmt"
	"strings"
)

// String renders an atom as R(t₁,…,tₙ).
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// String renders a comparison atom.
func (c Cmp) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// String renders ¬F.
func (n Not) String() string { return "¬" + wrap(n.F) }

// String renders F₁ ∧ F₂.
func (a And) String() string { return wrap(a.L) + " ∧ " + wrap(a.R) }

// String renders F₁ ∨ F₂.
func (o Or) String() string { return wrap(o.L) + " ∨ " + wrap(o.R) }

// String renders F₁ ⇒ F₂.
func (i Implies) String() string { return wrap(i.L) + " ⇒ " + wrap(i.R) }

// String renders ∃x₁…xₙ (F); the body is always parenthesized so the
// rendering re-parses without the ':' separator.
func (e Exists) String() string {
	return "∃" + strings.Join(e.Vars, ",") + " (" + e.Body.String() + ")"
}

// String renders ∀x₁…xₙ (F).
func (f Forall) String() string {
	return "∀" + strings.Join(f.Vars, ",") + " (" + f.Body.String() + ")"
}

// wrap parenthesizes composite subformulas so the rendering is unambiguous.
func wrap(f Formula) string {
	switch f.(type) {
	case Atom, Cmp, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// MustString is a fmt helper for tests and examples.
func MustString(f Formula) string {
	if f == nil {
		return "<nil>"
	}
	return f.String()
}

var _ = fmt.Stringer(Atom{})
