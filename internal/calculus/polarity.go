package calculus

// Polarity of a subformula within a formula (paper §1): positive when it
// is embedded under an even number of negations, negative under an odd
// number — the left-hand side of an implication counting as an implicit
// negation.
type Polarity int

// Polarity values. A subformula occurring both positively and negatively
// (possible only for syntactically repeated subformulas) reports Both.
const (
	Positive Polarity = 1 << iota
	Negative
	Both = Positive | Negative
)

// String names the polarity.
func (p Polarity) String() string {
	switch p {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	case Both:
		return "both"
	default:
		return "none"
	}
}

// WalkPolarity visits every subformula together with its polarity flag
// (true = positive occurrence).
func WalkPolarity(f Formula, visit func(sub Formula, positive bool)) {
	walkPolarity(f, true, visit)
}

func walkPolarity(f Formula, positive bool, visit func(Formula, bool)) {
	visit(f, positive)
	switch n := f.(type) {
	case Atom, Cmp:
	case Not:
		walkPolarity(n.F, !positive, visit)
	case And:
		walkPolarity(n.L, positive, visit)
		walkPolarity(n.R, positive, visit)
	case Or:
		walkPolarity(n.L, positive, visit)
		walkPolarity(n.R, positive, visit)
	case Implies:
		// The left-hand side counts as an implicit negation.
		walkPolarity(n.L, !positive, visit)
		walkPolarity(n.R, positive, visit)
	case Exists:
		walkPolarity(n.Body, positive, visit)
	case Forall:
		walkPolarity(n.Body, positive, visit)
	}
}

// AtomPolarity reports the polarity with which atoms of the given
// predicate occur in f; 0 when the predicate does not occur.
func AtomPolarity(f Formula, pred string) Polarity {
	var out Polarity
	WalkPolarity(f, func(sub Formula, positive bool) {
		if a, ok := sub.(Atom); ok && a.Pred == pred {
			if positive {
				out |= Positive
			} else {
				out |= Negative
			}
		}
	})
	return out
}
