package calculus

// This file implements the governing relationship between quantified
// variables (paper §1, Definitions and Notations). A quantified variable x
// directly governs a quantified variable y iff
//
//  1. y is quantified within the scope of x,
//  2. the quantification of y follows immediately that of x (y is not
//     quantified within the scope of a variable quantified in the scope
//     of x),
//  3. the scope of x contains an atom in which x occurs together with y or
//     with a variable governed by y, and
//  4. x and y have distinct quantifiers.
//
// Governs is the transitive closure. Intuitively x governs y iff moving
// the quantification of y out of the scope of x could compromise logical
// equivalence — the guard (†) of rewriting Rules 10 and 11.
//
// The computation assumes bound variables are standardized apart (all
// distinct); the rewrite engine guarantees this before applying rules.

type quantBlock struct {
	id     int
	exists bool
	vars   []string
	scope  Formula
	parent int // -1 for top-level blocks
}

// Governs computes, for the given formula, the full governing relationship:
// the result maps each quantified variable x to the set of variables x
// governs.
func Governs(f Formula) map[string]VarSet {
	var blocks []quantBlock
	collectBlocks(f, -1, &blocks)

	// Atom variable sets, restricted to atoms within each block's scope,
	// are needed for condition 3. Precompute per block.
	scopeAtoms := make([][]VarSet, len(blocks))
	for i, b := range blocks {
		var atoms []VarSet
		walk(b.scope, func(g Formula) {
			switch n := g.(type) {
			case Atom:
				vs := make(VarSet)
				for _, t := range n.Args {
					if t.IsVar() {
						vs.Add(t.Var)
					}
				}
				atoms = append(atoms, vs)
			case Cmp:
				vs := make(VarSet)
				for _, t := range []Term{n.Left, n.Right} {
					if t.IsVar() {
						vs.Add(t.Var)
					}
				}
				atoms = append(atoms, vs)
			}
		})
		scopeAtoms[i] = atoms
	}

	blockOf := make(map[string]int)
	for _, b := range blocks {
		for _, v := range b.vars {
			blockOf[v] = b.id
		}
	}

	governs := make(map[string]VarSet)
	gov := func(x string) VarSet {
		s, ok := governs[x]
		if !ok {
			s = make(VarSet)
			governs[x] = s
		}
		return s
	}

	// Fixpoint: condition 3 refers to the governed-by relation being
	// computed, and the final relation is transitively closed, so iterate
	// direct-edge discovery and closure until stable.
	for {
		changed := false
		for _, bx := range blocks {
			for _, by := range blocks {
				if by.parent != bx.id || by.exists == bx.exists {
					continue
				}
				for _, x := range bx.vars {
					for _, y := range by.vars {
						if gov(x).Has(y) {
							continue
						}
						if condition3(x, y, gov(y), scopeAtoms[bx.id]) {
							gov(x).Add(y)
							changed = true
						}
					}
				}
			}
		}
		if transitiveClose(governs) {
			changed = true
		}
		if !changed {
			return governs
		}
	}
}

// condition3 reports whether some atom contains x together with y or with a
// variable governed by y.
func condition3(x, y string, governedByY VarSet, atoms []VarSet) bool {
	for _, a := range atoms {
		if !a.Has(x) {
			continue
		}
		if a.Has(y) {
			return true
		}
		for z := range governedByY {
			if a.Has(z) {
				return true
			}
		}
	}
	return false
}

// transitiveClose closes the relation in place; it reports whether any edge
// was added.
func transitiveClose(governs map[string]VarSet) bool {
	changed := false
	for {
		added := false
		for x, ys := range governs {
			for y := range ys {
				for z := range governs[y] {
					if !ys.Has(z) && z != x {
						ys.Add(z)
						added = true
					}
				}
			}
		}
		if !added {
			return changed
		}
		changed = true
	}
}

// collectBlocks records every quantifier block with its nesting parent.
func collectBlocks(f Formula, parent int, blocks *[]quantBlock) {
	switch n := f.(type) {
	case Not:
		collectBlocks(n.F, parent, blocks)
	case And:
		collectBlocks(n.L, parent, blocks)
		collectBlocks(n.R, parent, blocks)
	case Or:
		collectBlocks(n.L, parent, blocks)
		collectBlocks(n.R, parent, blocks)
	case Implies:
		collectBlocks(n.L, parent, blocks)
		collectBlocks(n.R, parent, blocks)
	case Exists:
		id := len(*blocks)
		*blocks = append(*blocks, quantBlock{id: id, exists: true, vars: n.Vars, scope: n.Body, parent: parent})
		collectBlocks(n.Body, id, blocks)
	case Forall:
		id := len(*blocks)
		*blocks = append(*blocks, quantBlock{id: id, exists: false, vars: n.Vars, scope: n.Body, parent: parent})
		collectBlocks(n.Body, id, blocks)
	}
}

// GovernedBy returns the set of variables governed by any of the given
// quantified variables in f — the set rule guard (†) consults.
func GovernedBy(f Formula, vars []string) VarSet {
	governs := Governs(f)
	out := make(VarSet)
	for _, x := range vars {
		if s, ok := governs[x]; ok {
			out.AddAll(s)
		}
	}
	return out
}
