package planopt

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func scanOf(name string) *algebra.Scan {
	return algebra.NewScan(name, relation.NewSchema("a", "b"))
}

// producer builds a 3-node subtree (⋉ over two scans) that clears
// MinShareNodes.
func producer() algebra.Plan {
	return &algebra.SemiJoin{
		Left:  scanOf("P"),
		Right: scanOf("T"),
		On:    []algebra.ColPair{{Left: 0, Right: 0}},
	}
}

func countShared(p algebra.Plan) int {
	n := 0
	if _, ok := p.(*algebra.Shared); ok {
		n++
	}
	for _, c := range p.Children() {
		n += countShared(c)
	}
	return n
}

func TestShareWrapsRepeatedSubtrees(t *testing.T) {
	// Two structurally identical producers under a union, as the
	// disjunctive-filter translation emits.
	u := &algebra.Union{
		Left:  &algebra.Select{Input: producer(), Pred: algebra.NotNull{Col: 0}},
		Right: &algebra.Select{Input: producer(), Pred: algebra.IsNull{Col: 0}},
	}
	out := Share(u)
	root, ok := out.(*algebra.Shared)
	if !ok {
		t.Fatalf("plan root must be wrapped, got %T", out)
	}
	inner, ok := root.Input.(*algebra.Union)
	if !ok {
		t.Fatalf("expected union under root wrapper, got %T", root.Input)
	}
	var wrappers []*algebra.Shared
	for _, side := range []algebra.Plan{inner.Left, inner.Right} {
		sel, ok := side.(*algebra.Select)
		if !ok {
			t.Fatalf("union branch should stay a select, got %T", side)
		}
		sh, ok := sel.Input.(*algebra.Shared)
		if !ok {
			t.Fatalf("repeated producer not wrapped, got %T", sel.Input)
		}
		wrappers = append(wrappers, sh)
	}
	if wrappers[0] != wrappers[1] {
		t.Fatal("both occurrences must reference one Shared wrapper")
	}
	if wrappers[0].FP != algebra.Fingerprint(producer()) {
		t.Fatal("wrapper fingerprint must match the producer")
	}
	if algebra.Fingerprint(out) != algebra.Fingerprint(u) {
		t.Fatal("Share must not change the plan fingerprint")
	}
	if err := algebra.Validate(out); err != nil {
		t.Fatalf("shared plan fails validation: %v", err)
	}
}

func TestShareSkipsSmallSubtrees(t *testing.T) {
	// A repeated bare scan is below MinShareNodes and must stay bare: the
	// index prober needs to see raw scans on join right sides.
	u := &algebra.Union{Left: scanOf("P"), Right: scanOf("P")}
	out := Share(u)
	if root, ok := out.(*algebra.Shared); ok {
		out = root.Input
	}
	inner := out.(*algebra.Union)
	if _, ok := inner.Left.(*algebra.Scan); !ok {
		t.Fatalf("bare scan was wrapped: %T", inner.Left)
	}
}

func TestShareWrapsRootOnce(t *testing.T) {
	p := producer()
	out := Share(p)
	if countShared(out) != 1 {
		t.Fatalf("expected exactly the root wrapper, got %d Shared nodes", countShared(out))
	}
	if _, ok := out.(*algebra.Shared); !ok {
		t.Fatalf("root not wrapped: %T", out)
	}
	// Re-running the pass must not double-wrap.
	again := Share(out)
	if countShared(again) != 1 {
		t.Fatalf("Share is not idempotent: %d wrappers", countShared(again))
	}
}

func TestShareBoolSpansBranches(t *testing.T) {
	// The ⋉/⊼ twins of Prop. 4: each side occurs once per branch, and the
	// shared range subplan must be detected across the boolean tree.
	bp := &algebra.BoolAnd{Inputs: []algebra.BoolPlan{
		&algebra.NotEmpty{Input: producer()},
		&algebra.IsEmpty{Input: producer()},
	}}
	out := ShareBool(bp).(*algebra.BoolAnd)
	ne := out.Inputs[0].(*algebra.NotEmpty)
	ie := out.Inputs[1].(*algebra.IsEmpty)
	sh1, ok1 := ne.Input.(*algebra.Shared)
	sh2, ok2 := ie.Input.(*algebra.Shared)
	if !ok1 || !ok2 {
		t.Fatalf("probe inputs not wrapped: %T, %T", ne.Input, ie.Input)
	}
	if sh1 != sh2 {
		t.Fatal("identical probe inputs must share one wrapper")
	}
	if err := algebra.ValidateBool(out); err != nil {
		t.Fatalf("shared bool plan fails validation: %v", err)
	}
}
