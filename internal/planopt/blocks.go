package planopt

// BlocksFor converts a per-tuple cardinality hint into a block count for
// the batch executor: the number of fixed-capacity blocks of blockSize
// tuples needed to hold n tuples, rounding UP — a producer that promises
// 1500 tuples at block size 1024 emits two blocks. A hint of 0 (a provably
// empty input) needs zero blocks, which is what lets spool and buffer
// preallocation skip allocating a full block for empty producers; negative
// n (unbounded) and non-positive blockSize also yield 0.
func BlocksFor(n, blockSize int) int {
	if n <= 0 || blockSize <= 0 {
		return 0
	}
	return (n + blockSize - 1) / blockSize
}
