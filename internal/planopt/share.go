// Package planopt holds plan-to-plan rewrites applied between translation
// and execution. Its only pass today is Share, the common-subexpression
// detector feeding the executor's memoizing subplan cache: Bry's Rule 12
// deliberately duplicates the producer subtree across the branches of a
// distributed disjunction, and the quantifier translations of Prop. 4 emit
// ⋉/⊼ twins over the same range subplan. Share finds those repetitions by
// structural fingerprint and wraps them in algebra.Shared nodes so the
// executor computes each one once and replays it thereafter.
package planopt

import "repro/internal/algebra"

// MinShareNodes is the smallest subtree (in operator nodes) worth wrapping.
// Bare scans and single-predicate filters over scans are excluded: replaying
// them saves nothing over re-reading the base relation, and wrapping the
// right side of a join would hide it from the index prober.
const MinShareNodes = 3

// Share rewrites a relational plan, wrapping in algebra.Shared every subtree
// that either occurs two or more times within the plan or is the plan root,
// provided it has at least MinShareNodes operator nodes. The rewrite is
// structural only — it never changes the result — and is a no-op for the
// executor unless a memo is installed on the execution context.
func Share(p algebra.Plan) algebra.Plan {
	s := newSharer()
	s.count(p)
	return s.wrapRoot(s.rewrite(p))
}

// ShareBool rewrites every relational subplan of a boolean plan with one
// shared fingerprint census, so duplicates are detected across emptiness
// tests (the ⋉/⊼ twins of Prop. 4 sit under different boolean branches).
// Each emptiness test's input is additionally wrapped as a root: a fully
// drained probe (the common "no violations" integrity outcome) then leaves a
// warm memo entry for the next run of the same check.
func ShareBool(bp algebra.BoolPlan) algebra.BoolPlan {
	s := newSharer()
	s.countBool(bp)
	return s.rewriteBool(bp)
}

type sharer struct {
	fps       map[algebra.Plan]uint64 // per-pointer fingerprint cache
	counts    map[uint64]int          // occurrences per fingerprint (per edge)
	rewritten map[algebra.Plan]algebra.Plan
	shared    map[uint64]*algebra.Shared // one wrapper per fingerprint
}

func newSharer() *sharer {
	return &sharer{
		fps:       make(map[algebra.Plan]uint64),
		counts:    make(map[uint64]int),
		rewritten: make(map[algebra.Plan]algebra.Plan),
		shared:    make(map[uint64]*algebra.Shared),
	}
}

func (s *sharer) fp(p algebra.Plan) uint64 {
	if fp, ok := s.fps[p]; ok {
		return fp
	}
	fp := algebra.Fingerprint(p)
	s.fps[p] = fp
	return fp
}

// count tallies fingerprint occurrences, one per edge: a subtree pointer
// reused across union branches (as the disjunctive-filter translation does)
// counts once per branch, exactly as often as the executor would build it.
func (s *sharer) count(p algebra.Plan) {
	if sh, ok := p.(*algebra.Shared); ok {
		s.count(sh.Input)
		return
	}
	s.counts[s.fp(p)]++
	for _, c := range p.Children() {
		s.count(c)
	}
}

func (s *sharer) countBool(bp algebra.BoolPlan) {
	for _, c := range bp.PlanChildren() {
		s.count(c)
	}
	for _, c := range bp.BoolChildren() {
		s.countBool(c)
	}
}

// shareable reports whether the subtree rooted at p (an original, pre-rewrite
// pointer) clears the size threshold for memoization.
func (s *sharer) shareable(p algebra.Plan) bool {
	return algebra.NodeCount(p) >= MinShareNodes
}

// wrap returns the canonical Shared wrapper for p's fingerprint, creating it
// around the rewritten subtree on first use. All occurrences of a
// fingerprint share one wrapper, so Explain shows the same Shared#id at each
// site.
func (s *sharer) wrap(fp uint64, rewritten algebra.Plan) algebra.Plan {
	if sh, ok := s.shared[fp]; ok {
		return sh
	}
	sh := &algebra.Shared{Input: rewritten, FP: fp}
	s.shared[fp] = sh
	return sh
}

// wrapRoot wraps a plan root unconditionally (threshold permitting): the
// root occurs once per plan but recurs across Query/Check/Run calls, and a
// warm engine-held memo replays the whole query.
func (s *sharer) wrapRoot(rewritten algebra.Plan) algebra.Plan {
	if _, ok := rewritten.(*algebra.Shared); ok {
		return rewritten
	}
	if algebra.NodeCount(rewritten) < MinShareNodes {
		return rewritten
	}
	return s.wrap(algebra.Fingerprint(rewritten), rewritten)
}

// rewrite rebuilds the tree bottom-up, wrapping every repeated subtree that
// clears the threshold. Rewrites are memoized per pointer so DAG-shaped
// inputs stay DAGs.
func (s *sharer) rewrite(p algebra.Plan) algebra.Plan {
	if done, ok := s.rewritten[p]; ok {
		return done
	}
	out := s.rewriteChildren(p)
	if _, isShared := p.(*algebra.Shared); !isShared {
		if fp := s.fp(p); s.counts[fp] >= 2 && s.shareable(p) {
			out = s.wrap(fp, out)
		}
	}
	s.rewritten[p] = out
	return out
}

// rewriteChildren rebuilds one node with rewritten children, preserving the
// original pointer when nothing underneath changed.
func (s *sharer) rewriteChildren(p algebra.Plan) algebra.Plan {
	switch n := p.(type) {
	case *algebra.Scan:
		return n
	case *algebra.Select:
		if in := s.rewrite(n.Input); in != n.Input {
			return &algebra.Select{Input: in, Pred: n.Pred}
		}
	case *algebra.Project:
		if in := s.rewrite(n.Input); in != n.Input {
			return &algebra.Project{Input: in, Cols: n.Cols, NoDedup: n.NoDedup}
		}
	case *algebra.Product:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.Product{Left: l, Right: r}
		}
	case *algebra.Join:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.Join{Left: l, Right: r, On: n.On, Residual: n.Residual}
		}
	case *algebra.SemiJoin:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.SemiJoin{Left: l, Right: r, On: n.On}
		}
	case *algebra.ComplementJoin:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.ComplementJoin{Left: l, Right: r, On: n.On}
		}
	case *algebra.OuterJoin:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.OuterJoin{Left: l, Right: r, On: n.On}
		}
	case *algebra.ConstrainedOuterJoin:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.ConstrainedOuterJoin{Left: l, Right: r, On: n.On, Constraint: n.Constraint}
		}
	case *algebra.Union:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.Union{Left: l, Right: r}
		}
	case *algebra.Diff:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.Diff{Left: l, Right: r}
		}
	case *algebra.Intersect:
		l, r := s.rewrite(n.Left), s.rewrite(n.Right)
		if l != n.Left || r != n.Right {
			return &algebra.Intersect{Left: l, Right: r}
		}
	case *algebra.Division:
		l, r := s.rewrite(n.Dividend), s.rewrite(n.Divisor)
		if l != n.Dividend || r != n.Divisor {
			return &algebra.Division{Dividend: l, Divisor: r, KeyCols: n.KeyCols, DivCols: n.DivCols}
		}
	case *algebra.GroupCount:
		if in := s.rewrite(n.Input); in != n.Input {
			return &algebra.GroupCount{Input: in, GroupCols: n.GroupCols}
		}
	case *algebra.Materialize:
		if in := s.rewrite(n.Input); in != n.Input {
			return &algebra.Materialize{Input: in, Label: n.Label}
		}
	case *algebra.Shared:
		if in := s.rewrite(n.Input); in != n.Input {
			return &algebra.Shared{Input: in, FP: n.FP}
		}
	}
	return p
}

func (s *sharer) rewriteBool(bp algebra.BoolPlan) algebra.BoolPlan {
	switch n := bp.(type) {
	case *algebra.NotEmpty:
		if in := s.wrapRoot(s.rewrite(n.Input)); in != n.Input {
			return &algebra.NotEmpty{Input: in}
		}
	case *algebra.IsEmpty:
		if in := s.wrapRoot(s.rewrite(n.Input)); in != n.Input {
			return &algebra.IsEmpty{Input: in}
		}
	case *algebra.BoolAnd:
		ins, changed := s.rewriteBools(n.Inputs)
		if changed {
			return &algebra.BoolAnd{Inputs: ins}
		}
	case *algebra.BoolOr:
		ins, changed := s.rewriteBools(n.Inputs)
		if changed {
			return &algebra.BoolOr{Inputs: ins}
		}
	case *algebra.BoolNot:
		if in := s.rewriteBool(n.Input); in != n.Input {
			return &algebra.BoolNot{Input: in}
		}
	}
	return bp
}

func (s *sharer) rewriteBools(ins []algebra.BoolPlan) ([]algebra.BoolPlan, bool) {
	out := make([]algebra.BoolPlan, len(ins))
	changed := false
	for i, in := range ins {
		out[i] = s.rewriteBool(in)
		if out[i] != in {
			changed = true
		}
	}
	return out, changed
}
