// Package relation provides the data model shared by every layer of the
// library: values, tuples, schemas and set-semantics relations.
//
// The model follows Bry (SIGMOD 1989). Besides ordinary integer and string
// constants it includes two internal symbols used by the paper's extended
// algebra: the null symbol ∅ produced by outer-joins, and the mark symbol ⊥
// produced by constrained outer-joins (Definition 7). Neither symbol is
// available in the user query language; they exist only inside plans.
package relation

import (
	"fmt"
	"strconv"
)

// Kind discriminates the variants of a Value.
type Kind uint8

const (
	// KindInt is a 64-bit integer constant.
	KindInt Kind = iota
	// KindString is a string constant.
	KindString
	// KindNull is the internal null symbol ∅ introduced by outer-joins.
	KindNull
	// KindMark is the internal mark symbol ⊥ introduced by constrained
	// outer-joins (Definition 7 of the paper).
	KindMark
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindNull:
		return "null"
	case KindMark:
		return "mark"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single attribute value. The zero value is the integer 0.
//
// Values are small immutable records; they are passed by value everywhere.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// String_ returns a string value. The trailing underscore avoids colliding
// with the String method required by fmt.Stringer.
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Str is a shorthand alias for String_.
func Str(s string) Value { return String_(s) }

// Null returns the internal null symbol ∅.
func Null() Value { return Value{kind: KindNull} }

// Mark returns the internal mark symbol ⊥.
func Mark() Value { return Value{kind: KindMark} }

// Kind reports the variant of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the internal null symbol ∅.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsMark reports whether v is the internal mark symbol ⊥.
func (v Value) IsMark() bool { return v.kind == KindMark }

// AsInt returns the integer payload. It panics if v is not an integer;
// callers are expected to have checked Kind first.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relation: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsString returns the string payload. It panics if v is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: AsString on %s value", v.kind))
	}
	return v.s
}

// Equal reports structural identity of two values. The internal symbols are
// identical only to themselves: ∅ = ∅ and ⊥ = ⊥ hold under Equal. Equal is
// the equality used by set operations (deduplication, set difference); it is
// NOT the user-level comparison predicate, for which see Compare and EqualSQL.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == w.i
	case KindString:
		return v.s == w.s
	default: // KindNull, KindMark: identical to themselves
		return true
	}
}

// Comparable reports whether the pair can be ordered by the user-level
// comparison predicates: both values must be ordinary constants.
// Comparisons involving ∅ or ⊥ are never satisfied in user predicates (the
// symbols serve only the internal selections σ[i=∅], σ[i≠∅]).
//
// Ordinary constants of different kinds ARE comparable, under a total
// order that ranks integers before strings. A total order over the whole
// database domain is required for the logical identity ¬(t₁ op t₂) ⇔
// t₁ op̄ t₂ that normalization (and the Codd baseline's negation pushing)
// relies on: with partial comparability, ¬(x = y) and x ≠ y would diverge
// on mixed-kind pairs.
func (v Value) Comparable(w Value) bool {
	return v.kind != KindNull && v.kind != KindMark && w.kind != KindNull && w.kind != KindMark
}

// Compare orders two comparable values: -1 if v < w, 0 if equal, +1 if
// v > w. Values of different kinds order by kind (integers before
// strings). It panics if the values are not Comparable; predicate
// evaluation checks Comparable first and treats incomparable pairs as
// unsatisfied.
func (v Value) Compare(w Value) int {
	if !v.Comparable(w) {
		panic(fmt.Sprintf("relation: Compare on incomparable values %s and %s", v, w))
	}
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		default:
			return 0
		}
	default: // KindString
		switch {
		case v.s < w.s:
			return -1
		case v.s > w.s:
			return 1
		default:
			return 0
		}
	}
}

// String renders the value for plan explanations and figure tables.
// The internal symbols use the paper's notation.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	case KindNull:
		return "∅"
	default:
		return "⊥"
	}
}

// appendKey appends a canonical, collision-free encoding of the value to b.
// Used to key tuples in hash structures.
func (v Value) appendKey(b []byte) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindInt:
		b = strconv.AppendInt(b, v.i, 16)
	case KindString:
		b = strconv.AppendInt(b, int64(len(v.s)), 16)
		b = append(b, ':')
		b = append(b, v.s...)
	}
	return append(b, '|')
}
