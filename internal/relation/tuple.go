package relation

import "strings"

// Tuple is an ordered list of values. Tuples are treated as immutable once
// inserted into a relation; operators build new tuples rather than mutating.
type Tuple []Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Equal reports component-wise structural equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the tuple suitable for use as a
// map key. Distinct tuples always have distinct keys.
func (t Tuple) Key() string {
	b := make([]byte, 0, 16*len(t))
	for _, v := range t {
		b = v.appendKey(b)
	}
	return string(b)
}

// Concat returns the concatenation t ++ u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	return append(out, u...)
}

// Project returns the subtuple at the given 0-based column indexes.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Append returns a fresh tuple with v appended.
func (t Tuple) Append(v Value) Tuple {
	out := make(Tuple, 0, len(t)+1)
	out = append(out, t...)
	return append(out, v)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
