package relation

// This file provides the allocation-free hashing primitives the partitioned
// executor builds on. Tuple.Key() produces a canonical string — convenient
// for Go maps but it allocates twice per tuple (the projected subtuple and
// the key string). The partition-parallel hash joins instead hash the key
// columns in place into a 64-bit value and verify candidate matches with
// EqualOn, so the hot build/probe loops allocate nothing.

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// HashCols returns a 64-bit FNV-1a hash of the listed columns, without
// allocating. Equal column projections hash equally (the encoding mirrors
// appendKey, including the value kind and a string terminator, so ("ab","c")
// and ("a","bc") differ). Hash equality does NOT imply key equality; callers
// confirm candidates with EqualOn.
func (t Tuple) HashCols(cols []int) uint64 {
	h := fnvOffset64
	for _, c := range cols {
		h = t[c].hash64(h)
	}
	return h
}

// hash64 folds the value into an FNV-1a state.
func (v Value) hash64(h uint64) uint64 {
	h = (h ^ uint64(v.kind)) * fnvPrime64
	switch v.kind {
	case KindInt:
		x := uint64(v.i)
		for i := 0; i < 64; i += 8 {
			h = (h ^ (x>>i)&0xff) * fnvPrime64
		}
	case KindString:
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * fnvPrime64
		}
		h = (h ^ 0xfe) * fnvPrime64 // terminator keeps adjacent strings apart
	}
	return h
}

// Hash returns a 64-bit FNV-1a hash over every column of the tuple, without
// allocating. It is HashCols over the identity column list; the deduplicating
// operators (project, union, diff, intersect) use it as a bucket key and
// confirm candidates with Equal.
func (t Tuple) Hash() uint64 {
	h := fnvOffset64
	for _, v := range t {
		h = v.hash64(h)
	}
	return h
}

// EqualOn reports whether t's cols equal u's ucols component-wise, under the
// set-semantics Equal (∅ = ∅, ⊥ = ⊥). The two column lists must have equal
// length; this is the probe-time verification paired with HashCols.
func (t Tuple) EqualOn(cols []int, u Tuple, ucols []int) bool {
	for i, c := range cols {
		if !t[c].Equal(u[ucols[i]]) {
			return false
		}
	}
	return true
}
