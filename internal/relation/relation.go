package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a set of same-arity tuples with a schema. Following the
// paper's algebra, relations have set semantics: Insert deduplicates.
// Iteration order is insertion order, which keeps plans deterministic and
// lets the reproduction print the paper's figure tables verbatim.
type Relation struct {
	Name   string
	schema Schema
	tuples []Tuple
	index  map[string]int // tuple key -> position in tuples
	// version increments on every successful mutation; caches (hash
	// indexes) use it to detect staleness.
	version int64
}

// New creates an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{
		Name:   name,
		schema: schema,
		index:  make(map[string]int),
	}
}

// NewUnnamed creates an anonymous intermediate relation.
func NewUnnamed(schema Schema) *Relation { return New("", schema) }

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.schema) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.tuples) == 0 }

// Insert adds a tuple if not already present; it reports whether the tuple
// was new. It panics on arity mismatch, which always indicates a planner bug.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != len(r.schema) {
		panic(fmt.Sprintf("relation: arity mismatch inserting %d-tuple into %d-ary relation %q", len(t), len(r.schema), r.Name))
	}
	k := t.Key()
	if _, ok := r.index[k]; ok {
		return false
	}
	r.index[k] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	r.version++
	return true
}

// Delete removes a tuple if present; it reports whether anything was
// removed. The last tuple takes the removed tuple's slot, so deletion is
// O(1) at the price of perturbing insertion order.
func (r *Relation) Delete(t Tuple) bool {
	k := t.Key()
	pos, ok := r.index[k]
	if !ok {
		return false
	}
	last := len(r.tuples) - 1
	if pos != last {
		moved := r.tuples[last]
		r.tuples[pos] = moved
		r.index[moved.Key()] = pos
	}
	r.tuples = r.tuples[:last]
	delete(r.index, k)
	r.version++
	return true
}

// Version returns the mutation counter; it changes whenever the tuple set
// changes.
func (r *Relation) Version() int64 { return r.version }

// InsertValues is a convenience wrapper building the tuple from values.
func (r *Relation) InsertValues(vs ...Value) bool { return r.Insert(NewTuple(vs...)) }

// Contains reports whether the tuple is present.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.index[t.Key()]
	return ok
}

// Tuples returns the underlying tuple slice in insertion order. Callers must
// not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// At returns the i-th tuple in insertion order.
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Clone returns a deep-enough copy (tuples themselves are immutable).
func (r *Relation) Clone() *Relation {
	out := New(r.Name, r.schema)
	for _, t := range r.tuples {
		out.Insert(t)
	}
	return out
}

// Equal reports whether two relations hold the same set of tuples,
// regardless of insertion order.
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() {
		return false
	}
	for _, t := range r.tuples {
		if !s.Contains(t) {
			return false
		}
	}
	return true
}

// SortedKeys returns the canonical sorted tuple keys; used by tests to
// compare result sets across evaluation strategies.
func (r *Relation) SortedKeys() []string {
	keys := make([]string, 0, len(r.tuples))
	for _, t := range r.tuples {
		keys = append(keys, t.Key())
	}
	sort.Strings(keys)
	return keys
}

// String renders the relation as a small table, matching the layout of the
// paper's Figs. 2-4.
func (r *Relation) String() string {
	var b strings.Builder
	if r.Name != "" {
		b.WriteString(r.Name)
		b.WriteByte(' ')
	}
	b.WriteString(r.schema.String())
	b.WriteByte('\n')
	for _, t := range r.tuples {
		for i, v := range t {
			if i > 0 {
				b.WriteString("\t")
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
