package relation

import (
	"fmt"
	"strings"
)

// Attribute describes one column of a relation. Attribute names are for
// explanation only; the calculus and algebra address columns by position,
// following the paper's positional notation π₁, σ₂≠∅ and so on.
type Attribute struct {
	// Name is a human-readable column label, possibly empty.
	Name string
	// Internal marks columns holding the internal symbols ∅/⊥ added by
	// (constrained) outer-joins; such columns never escape to users.
	Internal bool
}

// Schema is the ordered list of attributes of a relation.
type Schema []Attribute

// NewSchema builds a schema from plain column names.
func NewSchema(names ...string) Schema {
	s := make(Schema, len(names))
	for i, n := range names {
		s[i] = Attribute{Name: n}
	}
	return s
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s) }

// Concat returns the schema of a product/join of two relations.
func (s Schema) Concat(t Schema) Schema {
	out := make(Schema, 0, len(s)+len(t))
	out = append(out, s...)
	return append(out, t...)
}

// Project returns the schema restricted to the given 0-based columns.
func (s Schema) Project(cols []int) Schema {
	out := make(Schema, len(cols))
	for i, c := range cols {
		out[i] = s[c]
	}
	return out
}

// Append returns the schema with one extra attribute.
func (s Schema) Append(a Attribute) Schema {
	out := make(Schema, 0, len(s)+1)
	out = append(out, s...)
	return append(out, a)
}

// String renders the schema as (a, b, c).
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		if a.Name == "" {
			fmt.Fprintf(&b, "c%d", i+1)
		} else {
			b.WriteString(a.Name)
		}
	}
	b.WriteByte(')')
	return b.String()
}
