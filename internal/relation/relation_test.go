package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Str("ab"), KindString, "ab"},
		{Null(), KindNull, "∅"},
		{Mark(), KindMark, "⊥"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v String = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if !Null().IsNull() || Null().IsMark() {
		t.Error("Null classification broken")
	}
	if !Mark().IsMark() || Mark().IsNull() {
		t.Error("Mark classification broken")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(1).Equal(Int(1)) || Int(1).Equal(Int(2)) {
		t.Error("int equality broken")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality broken")
	}
	if Int(1).Equal(Str("1")) {
		t.Error("cross-kind values must differ")
	}
	// The internal symbols are identical to themselves under set equality.
	if !Null().Equal(Null()) || !Mark().Equal(Mark()) || Null().Equal(Mark()) {
		t.Error("internal symbol identity broken")
	}
}

func TestValueCompare(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(1).Compare(Int(1)) != 0 {
		t.Error("int ordering broken")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Error("string ordering broken")
	}
	// Total order across kinds: ints before strings.
	if Int(999).Compare(Str("a")) != -1 {
		t.Error("ints must order before strings")
	}
	if Null().Comparable(Int(1)) || Mark().Comparable(Str("a")) {
		t.Error("internal symbols must be incomparable")
	}
}

func TestCmpOpNegateIsInvolution(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %s", op)
		}
	}
	// Property: for all comparable pairs, op(a,b) XOR negate(op)(a,b).
	f := func(a, b int64) bool {
		for _, op := range ops {
			if op.Apply(Int(a), Int(b)) == op.Negate().Apply(Int(a), Int(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpOpApplyIncomparable(t *testing.T) {
	// Comparisons never hold against the internal symbols.
	for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if op.Apply(Null(), Int(1)) || op.Apply(Int(1), Mark()) {
			t.Errorf("%s must not hold for internal symbols", op)
		}
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Keys must distinguish tuples even with adversarial string content.
	pairs := [][2]Tuple{
		{NewTuple(Str("a"), Str("b")), NewTuple(Str("ab"))},
		{NewTuple(Str("a|"), Str("b")), NewTuple(Str("a"), Str("|b"))},
		{NewTuple(Int(12)), NewTuple(Str("12"))},
		{NewTuple(Null()), NewTuple(Mark())},
		{NewTuple(Str("")), NewTuple()},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("key collision between %s and %s", p[0], p[1])
		}
	}
	f := func(a, b string) bool {
		ta := NewTuple(Str(a))
		tb := NewTuple(Str(b))
		return (a == b) == (ta.Key() == tb.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleOps(t *testing.T) {
	a := NewTuple(Int(1), Int(2))
	b := NewTuple(Int(3))
	c := a.Concat(b)
	if len(c) != 3 || !c[2].Equal(Int(3)) {
		t.Fatalf("Concat = %s", c)
	}
	p := c.Project([]int{2, 0})
	if !p.Equal(NewTuple(Int(3), Int(1))) {
		t.Fatalf("Project = %s", p)
	}
	ap := a.Append(Null())
	if len(ap) != 3 || !ap[2].IsNull() {
		t.Fatalf("Append = %s", ap)
	}
	if !a.Clone().Equal(a) {
		t.Fatal("Clone broken")
	}
	if a.Equal(b) {
		t.Fatal("different arity tuples must differ")
	}
	if a.String() != "(1, 2)" {
		t.Fatalf("String = %s", a.String())
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := New("r", NewSchema("a"))
	if !r.Insert(NewTuple(Int(1))) {
		t.Fatal("first insert must report new")
	}
	if r.Insert(NewTuple(Int(1))) {
		t.Fatal("duplicate insert must report old")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(NewTuple(Int(1))) || r.Contains(NewTuple(Int(2))) {
		t.Fatal("Contains broken")
	}
}

func TestRelationArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	r := New("r", NewSchema("a"))
	r.Insert(NewTuple(Int(1), Int(2)))
}

func TestRelationEqualOrderInsensitive(t *testing.T) {
	a := New("a", NewSchema("v"))
	b := New("b", NewSchema("v"))
	a.InsertValues(Int(1))
	a.InsertValues(Int(2))
	b.InsertValues(Int(2))
	b.InsertValues(Int(1))
	if !a.Equal(b) {
		t.Fatal("Equal must ignore insertion order")
	}
	b.InsertValues(Int(3))
	if a.Equal(b) {
		t.Fatal("different sets must differ")
	}
}

func TestRelationCloneIndependent(t *testing.T) {
	a := New("a", NewSchema("v"))
	a.InsertValues(Int(1))
	c := a.Clone()
	c.InsertValues(Int(2))
	if a.Len() != 1 || c.Len() != 2 {
		t.Fatal("Clone must be independent")
	}
}

func TestRelationString(t *testing.T) {
	a := New("P", NewSchema("v"))
	a.InsertValues(Str("a"))
	out := a.String()
	if !strings.Contains(out, "P") || !strings.Contains(out, "a") {
		t.Fatalf("String = %q", out)
	}
}

func TestSchemaOps(t *testing.T) {
	s := NewSchema("a", "b")
	if s.Arity() != 2 {
		t.Fatal("arity")
	}
	c := s.Concat(NewSchema("c"))
	if c.Arity() != 3 || c[2].Name != "c" {
		t.Fatalf("Concat = %v", c)
	}
	p := c.Project([]int{2})
	if p[0].Name != "c" {
		t.Fatalf("Project = %v", p)
	}
	ap := s.Append(Attribute{Name: "m", Internal: true})
	if !ap[2].Internal {
		t.Fatal("Append lost Internal flag")
	}
	if s.String() != "(a, b)" {
		t.Fatalf("String = %s", s.String())
	}
	if NewSchema("", "x").String() != "(c1, x)" {
		t.Fatalf("anonymous column rendering: %s", NewSchema("", "x").String())
	}
}

func TestSortedKeysDeterministic(t *testing.T) {
	a := New("a", NewSchema("v"))
	a.InsertValues(Int(2))
	a.InsertValues(Int(1))
	b := New("b", NewSchema("v"))
	b.InsertValues(Int(1))
	b.InsertValues(Int(2))
	ka, kb := a.SortedKeys(), b.SortedKeys()
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("SortedKeys must be order-insensitive")
		}
	}
}

func TestRelationDelete(t *testing.T) {
	r := New("r", NewSchema("v"))
	for i := 0; i < 4; i++ {
		r.InsertValues(Int(int64(i)))
	}
	v := r.Version()
	if !r.Delete(NewTuple(Int(1))) {
		t.Fatal("delete of present tuple must succeed")
	}
	if r.Delete(NewTuple(Int(1))) {
		t.Fatal("second delete must report absent")
	}
	if r.Len() != 3 || r.Contains(NewTuple(Int(1))) {
		t.Fatalf("delete left %d tuples, contains(1)=%v", r.Len(), r.Contains(NewTuple(Int(1))))
	}
	// The remaining tuples are intact and findable.
	for _, want := range []int64{0, 2, 3} {
		if !r.Contains(NewTuple(Int(want))) {
			t.Fatalf("tuple %d lost after delete", want)
		}
	}
	if r.Version() == v {
		t.Fatal("delete must bump the version")
	}
	// Delete-then-insert at same length must still change the version.
	v2 := r.Version()
	r.Delete(NewTuple(Int(0)))
	r.InsertValues(Int(99))
	if r.Version() == v2 {
		t.Fatal("mutations at constant length must still bump the version")
	}
	// Deleting the last slot works too.
	r2 := New("r2", NewSchema("v"))
	r2.InsertValues(Int(7))
	if !r2.Delete(NewTuple(Int(7))) || r2.Len() != 0 {
		t.Fatal("deleting the only tuple broke")
	}
}
