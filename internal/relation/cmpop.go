package relation

import "fmt"

// CmpOp is a comparison operator shared by the calculus (comparison atoms
// such as y ≠ cs) and the algebra (selection and join predicates).
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in infix notation.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "≠"
	case OpLt:
		return "<"
	case OpLe:
		return "≤"
	case OpGt:
		return ">"
	case OpGe:
		return "≥"
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Negate returns the complementary operator (¬(a < b) ⇔ a ≥ b, etc.), used
// when normalization pushes a negation into a comparison atom.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	default:
		return OpLt
	}
}

// EvalCmp applies the operator to an ordering result from Value.Compare.
func (op CmpOp) EvalCmp(cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// Apply evaluates v op w under user-level semantics: pairs that are not
// Comparable (different kinds, or involving the internal symbols ∅/⊥) never
// satisfy any operator.
func (op CmpOp) Apply(v, w Value) bool {
	if !v.Comparable(w) {
		return false
	}
	return op.EvalCmp(v.Compare(w))
}
