package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	for _, pt := range Points() {
		if err := p.Invoke(pt); err != nil {
			t.Fatalf("nil plan fired at %s: %v", pt, err)
		}
	}
	if got := p.Fired(); got != nil {
		t.Fatalf("nil plan reports fired arms: %v", got)
	}
}

func TestErrorArmFiresExactlyOnce(t *testing.T) {
	p := New(Arm{Point: PointIterNext, Kind: KindError, After: 3})
	for i := 1; i <= 10; i++ {
		err := p.Invoke(PointIterNext)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("invocation 3: want ErrInjected, got %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("invocation %d: unexpected error %v", i, err)
		}
	}
	if got := len(p.Fired()); got != 1 {
		t.Fatalf("want 1 fired arm, got %d", got)
	}
}

func TestPanicArm(t *testing.T) {
	p := New(Arm{Point: PointWorker, Kind: KindPanic})
	defer func() {
		if recover() == nil {
			t.Fatal("panic arm did not panic")
		}
		// After firing, the point is inert.
		if err := p.Invoke(PointWorker); err != nil {
			t.Fatalf("fired panic arm returned error on re-invoke: %v", err)
		}
	}()
	p.Invoke(PointWorker)
}

func TestDelayArmSleepsAndReturnsNil(t *testing.T) {
	p := New(Arm{Point: PointIterOpen, Kind: KindDelay, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := p.Invoke(PointIterOpen); err != nil {
		t.Fatalf("delay arm returned error: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay arm slept only %v", d)
	}
}

func TestSeededIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Seeded(seed).Arms(), Seeded(seed).Arms()
		if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
			t.Fatalf("seed %d: non-deterministic arms %v vs %v", seed, a, b)
		}
		if a[0].After < 1 {
			t.Fatalf("seed %d: After below 1: %+v", seed, a[0])
		}
	}
}

func TestSeededCoversAllPointsAndKinds(t *testing.T) {
	points := map[string]bool{}
	kinds := map[Kind]bool{}
	for seed := int64(0); seed < 200; seed++ {
		a := Seeded(seed).Arms()[0]
		points[a.Point] = true
		kinds[a.Kind] = true
	}
	for _, pt := range Points() {
		if !points[pt] {
			t.Errorf("200 seeds never armed point %s", pt)
		}
	}
	for _, k := range []Kind{KindError, KindPanic, KindDelay} {
		if !kinds[k] {
			t.Errorf("200 seeds never armed kind %s", k)
		}
	}
}

func TestConcurrentInvokeFiresOnce(t *testing.T) {
	p := New(Arm{Point: PointWorker, Kind: KindError, After: 8})
	var mu sync.Mutex
	var fired int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := p.Invoke(PointWorker); err != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("arm fired %d times under concurrency, want 1", fired)
	}
}
