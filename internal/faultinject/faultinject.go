// Package faultinject provides deterministic fault injection for the
// executor's robustness tests. Code under test registers named injection
// points (iterator open/next, partition workers, memo publication, catalog
// lookups); a Plan arms a subset of those points to return an error, panic,
// or delay on a chosen invocation. Plans are deterministic: the same arms
// (or the same Seeded seed) produce the same faults at the same points, so
// a chaos failure reproduces from its seed alone.
//
// Every arm fires exactly once. That is deliberate: the property the chaos
// suite asserts is not "the engine fails" but "the engine fails ONCE, with a
// typed error, and then keeps working" — a persistent fault would make the
// post-fault health probe meaningless.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Kind selects what an armed injection point does when it fires.
type Kind uint8

const (
	// KindError makes the point report an error wrapping ErrInjected.
	KindError Kind = iota
	// KindPanic makes the point panic.
	KindPanic
	// KindDelay makes the point sleep for the arm's Delay.
	KindDelay
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ErrInjected is the sentinel every injected error wraps; tests distinguish
// injected failures from organic ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// The registered injection points. Arming any other name is legal (the
// plan simply never fires), so packages can add points without touching
// this list; these are the ones the executor and catalog consult today.
const (
	// PointIterOpen fires when a base-relation scan opens.
	PointIterOpen = "iter.open"
	// PointIterNext fires on every base-relation scan Next call.
	PointIterNext = "iter.next"
	// PointWorker fires at the start of each partition worker.
	PointWorker = "worker.run"
	// PointMemoPublish fires just before a completely drained spool is
	// published into the plan-cache memo.
	PointMemoPublish = "memo.publish"
	// PointCatalogLookup fires on catalog relation lookups (both the
	// planner's resolution pass and the executor's scan builds).
	PointCatalogLookup = "catalog.lookup"
	// PointMemoElect fires right after an evaluation is elected producer of
	// a single-flight memo spool — killing the producer here proves waiters
	// re-elect instead of deadlocking.
	PointMemoElect = "memo.elect"
	// PointMemoAppend fires on each producer append into an in-flight spool,
	// after the tuple was charged but before it is published to consumers.
	PointMemoAppend = "memo.append"
	// PointServiceAdmission fires when the service tier admits a request
	// (after auth, before it enters the batcher queue).
	PointServiceAdmission = "service.admission"
	// PointServiceBatcher fires once per flushed service batch, before any
	// of its requests are dispatched.
	PointServiceBatcher = "service.batcher"
	// PointServiceFlight fires when a batch group reaches the request-level
	// flight table, before producer election.
	PointServiceFlight = "service.flight"
)

// Points returns the registered injection point names.
func Points() []string {
	return []string{PointIterOpen, PointIterNext, PointWorker, PointMemoPublish, PointCatalogLookup, PointMemoElect, PointMemoAppend}
}

// ServicePoints returns the service-tier injection point names. They are
// kept out of Points() deliberately: the engine chaos sweeps derive their
// arms from Points(), and a service-level arm would never fire there.
func ServicePoints() []string {
	return []string{PointServiceAdmission, PointServiceBatcher, PointServiceFlight}
}

// Arm describes one armed injection point.
type Arm struct {
	// Point is the injection point name (one of the Point constants).
	Point string
	// Kind is what happens when the arm fires.
	Kind Kind
	// After fires the arm on the After-th invocation of the point
	// (1-based; values below 1 mean the first invocation).
	After int64
	// Delay is how long a KindDelay arm sleeps (default 1ms).
	Delay time.Duration
}

func (a Arm) String() string {
	return fmt.Sprintf("%s:%s@%d", a.Point, a.Kind, a.After)
}

// armState is an Arm plus its (atomic) firing state, shared by every
// execution thread passing through the point.
type armState struct {
	arm   Arm
	count atomic.Int64
	fired atomic.Bool
}

// Plan is a set of armed injection points. A Plan is safe for concurrent
// use: invocation counts are atomic, and each arm fires exactly once.
// The zero-value (or nil) Plan never fires.
type Plan struct {
	arms map[string][]*armState
}

// New builds a plan from explicit arms.
func New(arms ...Arm) *Plan {
	p := &Plan{arms: make(map[string][]*armState, len(arms))}
	for _, a := range arms {
		if a.After < 1 {
			a.After = 1
		}
		if a.Kind == KindDelay && a.Delay <= 0 {
			a.Delay = time.Millisecond
		}
		p.arms[a.Point] = append(p.arms[a.Point], &armState{arm: a})
	}
	return p
}

// Seeded derives one armed point, kind and trigger count deterministically
// from the seed (splitmix64), covering the registered points as seeds sweep.
func Seeded(seed int64) *Plan {
	x := uint64(seed)
	next := func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	pts := Points()
	return New(Arm{
		Point: pts[next()%uint64(len(pts))],
		Kind:  Kind(next() % 3),
		After: int64(next()%24) + 1,
		Delay: time.Millisecond,
	})
}

// Invoke registers one pass through the named injection point and realizes
// any arm due to fire there: KindPanic panics, KindDelay sleeps and returns
// nil, KindError returns an error wrapping ErrInjected. A nil plan (or an
// unarmed point) does nothing, so production call sites pay one map lookup
// only when a plan is installed at all.
func (p *Plan) Invoke(point string) error {
	if p == nil {
		return nil
	}
	for _, s := range p.arms[point] {
		n := s.count.Add(1)
		if n != s.arm.After || !s.fired.CompareAndSwap(false, true) {
			continue
		}
		switch s.arm.Kind {
		case KindPanic:
			panic(fmt.Sprintf("faultinject: injected panic at %s (invocation %d)", point, n))
		case KindDelay:
			time.Sleep(s.arm.Delay)
		default:
			return fmt.Errorf("faultinject: %w at %s (invocation %d)", ErrInjected, point, n)
		}
	}
	return nil
}

// Fired reports the arms that have fired, for test assertions.
func (p *Plan) Fired() []Arm {
	return p.collect(true)
}

// Arms returns every armed point, fired or not, for diagnostics.
func (p *Plan) Arms() []Arm {
	return p.collect(false)
}

func (p *Plan) collect(firedOnly bool) []Arm {
	if p == nil {
		return nil
	}
	points := make([]string, 0, len(p.arms))
	for pt := range p.arms {
		points = append(points, pt)
	}
	sort.Strings(points)
	var out []Arm
	for _, pt := range points {
		for _, s := range p.arms[pt] {
			if !firedOnly || s.fired.Load() {
				out = append(out, s.arm)
			}
		}
	}
	return out
}
