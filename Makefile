GO ?= go

.PHONY: check fmt vet build test lint race chaos bench bench-smoke bench-baseline repro smoke-serve loadtest-smoke

## check: the tier-1 gate — format, vet, lint, build, tests, race tests
check:
	./scripts/check.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## lint: the repo's own invariant checkers (internal/analyzers via
## cmd/lintrepro) — iterator lifecycle, governor accounting, error
## taxonomy, context discipline, goroutine lifecycle, lock release,
## atomic exclusivity, clock injection, wire-schema drift. Non-zero exit
## on any finding; -timing prints per-pass wall clock for the check.sh
## lint budget.
lint:
	$(GO) run ./cmd/lintrepro -timing ./...

## race: race-detector pass over the concurrent packages
race:
	$(GO) test -race ./internal/exec/ ./internal/core/ ./internal/planopt/ ./internal/integrity/ ./internal/service/

## chaos: deep seeded fault-injection sweep under -race (CHAOS_SEEDS
## overrides the seed count; check.sh runs a shorter sweep of 24)
chaos:
	CHAOS_SEEDS=$${CHAOS_SEEDS:-64} $(GO) test -race -run Chaos -count=1 -v ./internal/exec/ ./internal/core/

## bench: the paper's figure/experiment benchmarks
bench:
	$(GO) test -bench=. -benchmem .

## bench-smoke: run every benchmark exactly once — catches bit-rotted
## benchmark code without paying for real measurements — then regenerate
## the deterministic E13/E15/E16 counters and gate them against the committed
## baseline: any counter more than 10% worse than bench/baseline.jsonl
## fails the target (and with it ./scripts/check.sh).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchrepro -only e13,e15,e16 -json bench/current.jsonl > /dev/null
	./scripts/benchcmp.sh -gate 10 bench/baseline.jsonl bench/current.jsonl

## bench-baseline: re-bless the counters the bench-smoke gate compares
## against (commit the result deliberately, with the change that moved them)
bench-baseline:
	$(GO) run ./cmd/benchrepro -only e13,e15,e16 -json bench/baseline.jsonl > /dev/null

## repro: regenerate every paper figure and experiment table
repro:
	$(GO) run ./cmd/benchrepro

## smoke-serve: boot queryd on a random port, run one query per tenant and
## fetch /stats through queryctl's remote mode, then drain it with SIGINT.
## An end-to-end liveness probe for the service tier; not part of check.sh.
smoke-serve:
	./scripts/smoke_serve.sh

## loadtest-smoke: boot an easy-to-overload queryd (two slots, no cache,
## tight sojourn target, one injected fault) and storm it with queryload;
## asserts sheds happened, counters reconcile, the fault did not kill the
## daemon, and SIGINT drains cleanly. Part of check.sh.
loadtest-smoke:
	./scripts/loadtest_smoke.sh
