GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke repro

## check: the tier-1 gate — format, vet, build, tests, race tests
check:
	./scripts/check.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrent packages
race:
	$(GO) test -race ./internal/exec/ ./internal/core/

## bench: the paper's figure/experiment benchmarks
bench:
	$(GO) test -bench=. -benchmem .

## bench-smoke: run every benchmark exactly once — catches bit-rotted
## benchmark code without paying for real measurements
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

## repro: regenerate every paper figure and experiment table
repro:
	$(GO) run ./cmd/benchrepro
